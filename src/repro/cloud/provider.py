"""Node pools and the simulated cloud provider.

The paper's scheduler runs *on the cloud* (§2), where cluster capacity is
bought, not given: nodes take real time to provision, cost real money per
second, and — on the spot market — can be reclaimed by the provider with
no regard for what is running on them.  This module models exactly that
surface and nothing more:

* :class:`NodePool` — an instance-type configuration (slots per node,
  price, provision/teardown latency, fleet limits, and — for spot pools —
  a mean lifetime for the exponential interruption process);
* :class:`Node` — one machine's lifecycle
  (``provisioning → ready → draining → released``) with the timestamps
  the billing meter prices;
* :class:`CloudProvider` — the node ledger over the shared event engine:
  it owns the provisioning/interruption timers and reports lifecycle
  transitions to the substrate through two callbacks.

Interruptions draw from :func:`repro.sim.rng.stream`, keyed by the
provider seed and the pool name, so every trial's spot weather is
reproducible and independent of any other randomness in the simulation
(the CLUES elasticity manager's power-on/power-off ledger is the shape
reference here; the spot process is the cloud twist on top).
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import CloudError, ProvisioningError
from ..sim.rng import stream

__all__ = ["NodePool", "Node", "NodeState", "CloudProvider"]


class NodeState(str, enum.Enum):
    PROVISIONING = "Provisioning"
    READY = "Ready"
    DRAINING = "Draining"
    RELEASED = "Released"


@dataclass(frozen=True)
class NodePool:
    """One instance-type configuration the provider can allocate from.

    Parameters
    ----------
    slots_per_node:
        Scheduler slots (vCPUs) one node contributes.
    price_per_hour:
        On-demand or spot price in dollars per node-hour.
    provision_delay:
        Seconds between requesting a node and its capacity coming online.
    teardown_delay:
        Seconds a released node keeps billing while it deprovisions.
    min_nodes / max_nodes:
        Fleet bounds the autoscaler must respect.
    initial_nodes:
        Nodes already running (and billing) when the simulation starts —
        the fixed cluster every pre-cloud layer assumed.
    spot:
        Spot-market pool: cheaper, but interruptible.
    mean_lifetime:
        Mean of the exponential time-to-interruption for ready spot
        nodes; ``None`` disables interruptions (an on-demand pool in all
        but price).
    """

    name: str
    slots_per_node: int
    price_per_hour: float
    provision_delay: float = 60.0
    teardown_delay: float = 0.0
    min_nodes: int = 0
    max_nodes: int = 16
    initial_nodes: int = 0
    spot: bool = False
    mean_lifetime: Optional[float] = None

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise CloudError(f"pool name must be a non-empty string, got {self.name!r}")
        if self.slots_per_node < 1:
            raise CloudError(f"{self.name}: slots_per_node must be >= 1")
        if self.price_per_hour < 0:
            raise CloudError(f"{self.name}: price_per_hour must be non-negative")
        if self.provision_delay < 0 or self.teardown_delay < 0:
            raise CloudError(f"{self.name}: provisioning delays must be non-negative")
        if not 0 <= self.min_nodes <= self.max_nodes:
            raise CloudError(
                f"{self.name}: need 0 <= min_nodes <= max_nodes, got "
                f"[{self.min_nodes}, {self.max_nodes}]"
            )
        if not self.min_nodes <= self.initial_nodes <= self.max_nodes:
            raise CloudError(
                f"{self.name}: initial_nodes ({self.initial_nodes}) outside "
                f"[{self.min_nodes}, {self.max_nodes}]"
            )
        if self.mean_lifetime is not None:
            if not self.spot:
                raise CloudError(
                    f"{self.name}: mean_lifetime only applies to spot pools"
                )
            if not self.mean_lifetime > 0 or math.isnan(self.mean_lifetime):
                raise CloudError(f"{self.name}: mean_lifetime must be positive")


class Node:
    """One machine: lifecycle state plus the timestamps billing prices."""

    __slots__ = (
        "id",
        "pool",
        "state",
        "requested_at",
        "ready_at",
        "released_at",
        "drain_remaining",
        "interrupted",
        "provision_failed",
    )

    def __init__(self, node_id: int, pool: NodePool, requested_at: float):
        self.id = node_id
        self.pool = pool
        self.state = NodeState.PROVISIONING
        #: Billing starts here — the cloud charges while the node boots.
        self.requested_at = requested_at
        self.ready_at: Optional[float] = None
        #: Billing ends here (teardown included); ``None`` while alive.
        self.released_at: Optional[float] = None
        #: Slots of this node the scheduler still holds while draining.
        self.drain_remaining = 0
        self.interrupted = False
        #: The boot attempt failed (injected fault) — never came online.
        self.provision_failed = False

    @property
    def slots(self) -> int:
        return self.pool.slots_per_node

    @property
    def alive(self) -> bool:
        return self.state in (NodeState.PROVISIONING, NodeState.READY,
                              NodeState.DRAINING)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.pool.name}/{self.id} {self.state.value}>"


class CloudProvider:
    """The node ledger: provisioning, draining, interruption, release.

    The provider never talks to the policy engine; it reports capacity
    transitions to whoever bound it (the cloud simulator) via callbacks:

    ``on_ready(node)``
        A requested node finished provisioning; its slots may join the
        cluster.
    ``on_interrupt(node, slots_held)``
        A spot node was reclaimed; ``slots_held`` is the capacity the
        scheduler still held on it (a draining node has already given
        part back).
    """

    def __init__(self, pools: Sequence[NodePool], seed: int = 0,
                 faults=None):
        pools = tuple(pools)
        if not pools:
            raise CloudError("CloudProvider needs at least one pool")
        names = [pool.name for pool in pools]
        if len(set(names)) != len(names):
            raise CloudError(f"pool names must be unique, got {names}")
        self.pools: Tuple[NodePool, ...] = pools
        self.seed = int(seed)
        #: Optional :class:`repro.faults.FaultInjector`.  When ``None``
        #: (the default) every fault path below is skipped outright, so a
        #: fault-free provider is byte-identical to the pre-fault one.
        self.faults = faults
        self.nodes: List[Node] = []
        #: Nodes not yet released (provisioning/ready/draining).  The
        #: per-event capacity views iterate this instead of ``nodes``:
        #: on a long spot-churny run the full ledger grows with every
        #: replacement ever provisioned (billing needs it), which turned
        #: the views — called on every scheduling event — quadratic.
        self._live: List[Node] = []
        self.interruptions = 0
        self.crashes = 0
        self.provision_failures = 0
        self.provision_timeouts = 0
        self.provision_retries = 0
        self.capacity_shortages = 0
        self._engine = None
        self._on_ready: Optional[Callable[[Node], None]] = None
        self._on_interrupt: Optional[Callable[[Node, int], None]] = None
        self._on_interrupt_notice: Optional[
            Callable[[Node, float], None]] = None
        self._on_provision_failed: Optional[
            Callable[[Node, bool], None]] = None
        self._ids = itertools.count(1)
        self._spot_rng: Dict[str, object] = {
            pool.name: stream(self.seed, f"cloud.spot.{pool.name}")
            for pool in pools
            if pool.spot and pool.mean_lifetime is not None
        }

    # ------------------------------------------------------------------
    # Binding and the initial fleet
    # ------------------------------------------------------------------

    def bind(
        self,
        engine,
        on_ready: Optional[Callable[[Node], None]] = None,
        on_interrupt: Optional[Callable[[Node, int], None]] = None,
        on_interrupt_notice: Optional[Callable[[Node, float], None]] = None,
        on_provision_failed: Optional[Callable[[Node, bool], None]] = None,
    ) -> None:
        """Attach to the event engine and materialize the initial fleet.

        Initial nodes come up ready instantly (they are the cluster the
        experiment starts with) — no ``on_ready`` callback fires for
        them, but initial *spot* nodes do get their interruption draw.

        The two fault callbacks only ever fire when a fault injector is
        attached: ``on_interrupt_notice(node, notice)`` announces a
        reclaim ``notice`` seconds before it lands, and
        ``on_provision_failed(node, will_retry)`` reports a failed boot
        attempt (``will_retry`` says the provider will try again).
        """
        if self._engine is not None:
            raise CloudError("CloudProvider is already bound to an engine")
        self._engine = engine
        self._on_ready = on_ready
        self._on_interrupt = on_interrupt
        self._on_interrupt_notice = on_interrupt_notice
        self._on_provision_failed = on_provision_failed
        for pool in self.pools:
            for _ in range(pool.initial_nodes):
                node = Node(next(self._ids), pool, engine.now)
                node.state = NodeState.READY
                node.ready_at = engine.now
                self.nodes.append(node)
                self._live.append(node)
                self._schedule_interruption(node)
        if self.faults is not None:
            self.faults.bind(self, engine)

    def _require_engine(self):
        if self._engine is None:
            raise CloudError("CloudProvider.bind() must be called first")
        return self._engine

    # ------------------------------------------------------------------
    # Capacity views
    # ------------------------------------------------------------------

    def nodes_in(self, pool: NodePool, *states: NodeState) -> List[Node]:
        wanted = states or (NodeState.PROVISIONING, NodeState.READY,
                            NodeState.DRAINING)
        return [n for n in self._live if n.pool is pool and n.state in wanted]

    @property
    def ready_slots(self) -> int:
        """Slots on ready nodes (what the scheduler can currently hold)."""
        return sum(n.slots for n in self._live if n.state == NodeState.READY)

    @property
    def active_nodes(self) -> List[Node]:
        """Nodes the fleet counts for scaling: provisioning or ready."""
        return [
            n for n in self._live
            if n.state in (NodeState.PROVISIONING, NodeState.READY)
        ]

    @property
    def draining_nodes(self) -> List[Node]:
        return [n for n in self._live if n.state == NodeState.DRAINING]

    @property
    def min_total_nodes(self) -> int:
        return sum(pool.min_nodes for pool in self.pools)

    @property
    def max_total_nodes(self) -> int:
        return sum(pool.max_nodes for pool in self.pools)

    @property
    def nodes_provisioned(self) -> int:
        return len(self.nodes)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def request_node(self, pool: Optional[NodePool] = None) -> Node:
        """Start provisioning one node; capacity arrives after the delay.

        With no explicit pool, the first pool with headroom (declaration
        order) takes the request — declare the cheap spot pool first to
        prefer it, or last to use it as overflow.
        """
        engine = self._require_engine()
        if pool is None:
            pool = next(
                (p for p in self.pools
                 if len(self.nodes_in(p, NodeState.PROVISIONING, NodeState.READY))
                 < p.max_nodes),
                None,
            )
            if pool is None:
                raise ProvisioningError("every pool is at max_nodes")
        elif (
            len(self.nodes_in(pool, NodeState.PROVISIONING, NodeState.READY))
            >= pool.max_nodes
        ):
            raise ProvisioningError(f"pool {pool.name!r} is at max_nodes")
        return self._provision(pool, attempt=0)

    def _provision(self, pool: NodePool, attempt: int) -> Node:
        """One boot attempt; the fault injector decides its fate."""
        engine = self._engine
        node = Node(next(self._ids), pool, engine.now)
        self.nodes.append(node)
        self._live.append(node)
        verdict = (
            self.faults.provision_outcome(pool, engine.now)
            if self.faults is not None else None
        )
        if verdict is None:
            # Never cancelled (cancel_node flips the node's state and the
            # callback self-guards), so the plain-entry path applies.
            engine.post(pool.provision_delay, self._node_ready, node)
        else:
            # Doomed attempt: it bills while it burns (requested_at up to
            # the failure detection), then reports through the failure
            # callback and — per the retry policy — tries again.
            kind, delay = verdict
            engine.post(delay, self._provision_failed, node, attempt, kind)
        return node

    def _provision_failed(self, node: Node, attempt: int,
                          kind: str) -> None:
        if node.state != NodeState.PROVISIONING:
            return  # cancelled while (not) booting
        node.state = NodeState.RELEASED
        node.released_at = self._engine.now
        node.provision_failed = True
        self._live.remove(node)
        self.provision_failures += 1
        if kind == "timeout":
            self.provision_timeouts += 1
        elif kind == "shortage":
            self.capacity_shortages += 1
        retry = self.faults.retry
        will_retry = retry is not None and attempt < retry.max_retries
        if self._on_provision_failed is not None:
            self._on_provision_failed(node, will_retry)
        if will_retry:
            self.provision_retries += 1
            self._engine.post(
                self.faults.backoff(attempt),
                self._retry_provision, node.pool, attempt + 1,
            )

    def _retry_provision(self, pool: NodePool, attempt: int) -> None:
        in_flight = self.nodes_in(pool, NodeState.PROVISIONING,
                                  NodeState.READY)
        if len(in_flight) >= pool.max_nodes:
            return  # the fleet recovered by other means; drop the retry
        self._provision(pool, attempt)

    def has_headroom(self) -> bool:
        """Whether any pool can still take a node request."""
        return any(
            len(self.nodes_in(p, NodeState.PROVISIONING, NodeState.READY))
            < p.max_nodes
            for p in self.pools
        )

    def _node_ready(self, node: Node) -> None:
        if node.state != NodeState.PROVISIONING:
            return  # cancelled while booting
        node.state = NodeState.READY
        node.ready_at = self._engine.now
        self._schedule_interruption(node)
        if self._on_ready is not None:
            self._on_ready(node)

    def cancel_node(self, node: Node) -> None:
        """Abort a node that is still provisioning (billed until now)."""
        if node.state != NodeState.PROVISIONING:
            raise ProvisioningError(
                f"cannot cancel node in state {node.state.value}"
            )
        node.state = NodeState.RELEASED
        node.released_at = self._engine.now
        self._live.remove(node)

    def begin_drain(self, node: Node) -> None:
        """Cordon a ready node: its slots leave the cluster as they free."""
        if node.state != NodeState.READY:
            raise ProvisioningError(
                f"cannot drain node in state {node.state.value}"
            )
        node.state = NodeState.DRAINING
        node.drain_remaining = node.slots

    def drained(self, node: Node, slots: int) -> bool:
        """Record ``slots`` reclaimed from a draining node.

        Returns True (and releases the node) once nothing remains.
        """
        if node.state != NodeState.DRAINING:
            raise ProvisioningError(
                f"cannot drain node in state {node.state.value}"
            )
        if slots < 0 or slots > node.drain_remaining:
            raise ProvisioningError(
                f"drained {slots} slots from a node holding "
                f"{node.drain_remaining}"
            )
        node.drain_remaining -= slots
        if node.drain_remaining == 0:
            self.release_node(node)
            return True
        return False

    def release_node(self, node: Node) -> None:
        """Give a node back; billing runs through the teardown window."""
        if not node.alive:
            raise ProvisioningError(f"node {node.id} is already released")
        node.state = NodeState.RELEASED
        node.drain_remaining = 0
        node.released_at = self._engine.now + node.pool.teardown_delay
        self._live.remove(node)

    # ------------------------------------------------------------------
    # Injected faults (driven by repro.faults.FaultInjector)
    # ------------------------------------------------------------------

    def fault_victim(self, pool_name: Optional[str] = None) -> Optional[Node]:
        """Deterministic target for a point fault: the oldest READY node
        (falling back to DRAINING), optionally restricted to one pool."""
        for state in (NodeState.READY, NodeState.DRAINING):
            for pool in self.pools:
                if pool_name is not None and pool.name != pool_name:
                    continue
                candidates = self.nodes_in(pool, state)
                if candidates:
                    return candidates[0]
        return None

    def crash_node(self, node: Node) -> None:
        """Kill a node outright — no notice, running work is lost."""
        if node.state not in (NodeState.READY, NodeState.DRAINING):
            return
        self.crashes += 1
        self._interrupt(node)

    def interrupt_with_notice(self, node: Node, notice: float) -> None:
        """Announce a reclaim ``notice`` seconds ahead (the spot-market
        "two-minute warning"), then take the node."""
        if node.state not in (NodeState.READY, NodeState.DRAINING):
            return
        if notice <= 0.0:
            self._interrupt(node)
            return
        if self._on_interrupt_notice is not None:
            self._on_interrupt_notice(node, float(notice))
        # The reclaim self-guards, so a node released meanwhile no-ops.
        self._engine.post(notice, self._interrupt, node)

    # ------------------------------------------------------------------
    # Spot interruptions
    # ------------------------------------------------------------------

    def _schedule_interruption(self, node: Node) -> None:
        rng = self._spot_rng.get(node.pool.name)
        if rng is None:
            return
        lifetime = float(rng.exponential(node.pool.mean_lifetime))
        # Reclaims on released nodes no-op in _interrupt; never cancelled.
        self._engine.post(lifetime, self._interrupt, node)

    def _interrupt(self, node: Node) -> None:
        if node.state not in (NodeState.READY, NodeState.DRAINING):
            return  # released before the reclaim landed
        slots_held = (
            node.drain_remaining
            if node.state == NodeState.DRAINING
            else node.slots
        )
        node.state = NodeState.RELEASED
        node.drain_remaining = 0
        node.interrupted = True
        self._live.remove(node)
        # A reclaimed instance is gone now — no teardown grace is billed.
        node.released_at = self._engine.now
        self.interruptions += 1
        if self._on_interrupt is not None:
            self._on_interrupt(node, slots_held)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ready = sum(1 for n in self.nodes if n.state == NodeState.READY)
        return (
            f"<CloudProvider pools={[p.name for p in self.pools]} "
            f"nodes={len(self.nodes)} ready={ready}>"
        )
