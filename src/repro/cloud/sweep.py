"""Autoscaler × policy sweeps with cost accounting.

The cloud question is two-dimensional: the paper's four scheduling
policies each behave differently under each fleet policy, and the
interesting trade-off (metrics vs dollars) only shows up in the grid.
:func:`compare_cloud` runs that grid exactly the way the Figure-7/8
sweeps run theirs — one flat task list, the process pool fanning out
misses, the content-addressed cache answering repeats — but each trial's
record carries the :class:`~repro.cloud.billing.CostReport` next to the
§4.3 metrics, so cost columns fall out of the same machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CloudError
from ..scheduling.registry import REGISTRY
from ..schedsim.cache import resolve_trial_cache
from ..schedsim.workload import WorkloadSpec, generate_workload
from .autoscaler import AUTOSCALER_NAMES, make_autoscaler
from .billing import CostModel
from .provider import CloudProvider, NodePool
from .simulator import CloudScheduleSimulator, CloudSimulationResult

__all__ = [
    "CloudScenario",
    "CloudTrialStats",
    "cloud_trial_task",
    "run_cloud_trial_task",
    "run_cloud_trial_tasks",
    "compare_cloud",
    "run_cloud_once",
]

#: Task-tuple tag: keeps cloud records from ever colliding with plain
#: trial metrics in a shared cache directory.
_TASK_KIND = "cloud-trial"
_TASK_VERSION = 1


@dataclass(frozen=True)
class CloudScenario:
    """The fleet configuration one sweep holds fixed across its grid.

    One on-demand pool plus an optional cheaper, interruptible spot
    pool.  Every field is a scalar so a scenario flattens losslessly
    into the content-addressed task tuple.

    The default initial fleet is 4 × 16 = 64 slots — the paper's
    cluster — so every policy (including rigid-max, whose xlarge jobs
    pin 64 replicas) is feasible under a static fleet.
    """

    slots_per_node: int = 16
    initial_nodes: int = 4
    max_nodes: int = 8
    min_nodes: int = 1
    provision_delay: float = 120.0
    teardown_delay: float = 0.0
    price_per_hour: float = 0.68  # c6g.4xlarge-ish on-demand
    spot_nodes: int = 0
    spot_price_per_hour: float = 0.27
    spot_mean_lifetime: float = 14400.0
    tick: float = 60.0

    def __post_init__(self):
        if self.initial_nodes < 1:
            raise CloudError("scenario needs at least one initial node")
        if not self.min_nodes <= self.initial_nodes <= self.max_nodes:
            raise CloudError(
                "need min_nodes <= initial_nodes <= max_nodes, got "
                f"[{self.min_nodes}, {self.initial_nodes}, {self.max_nodes}]"
            )
        if self.spot_nodes < 0:
            raise CloudError("spot_nodes must be non-negative")

    def pools(self) -> List[NodePool]:
        pools = [
            NodePool(
                name="ondemand",
                slots_per_node=self.slots_per_node,
                price_per_hour=self.price_per_hour,
                provision_delay=self.provision_delay,
                teardown_delay=self.teardown_delay,
                min_nodes=self.min_nodes,
                max_nodes=self.max_nodes,
                initial_nodes=self.initial_nodes,
            )
        ]
        if self.spot_nodes > 0:
            pools.append(
                NodePool(
                    name="spot",
                    slots_per_node=self.slots_per_node,
                    price_per_hour=self.spot_price_per_hour,
                    provision_delay=self.provision_delay,
                    teardown_delay=self.teardown_delay,
                    min_nodes=0,
                    max_nodes=self.spot_nodes,
                    initial_nodes=self.spot_nodes,
                    spot=True,
                    mean_lifetime=self.spot_mean_lifetime,
                )
            )
        return pools

    def flatten(self) -> Tuple:
        return (
            self.slots_per_node, self.initial_nodes, self.max_nodes,
            self.min_nodes, self.provision_delay, self.teardown_delay,
            self.price_per_hour, self.spot_nodes, self.spot_price_per_hour,
            self.spot_mean_lifetime, self.tick,
        )

    @classmethod
    def unflatten(cls, fields: Sequence) -> "CloudScenario":
        (spn, initial, mx, mn, prov, tear, price, spot, sprice, slife,
         tick) = fields
        return cls(
            slots_per_node=int(spn), initial_nodes=int(initial),
            max_nodes=int(mx), min_nodes=int(mn), provision_delay=prov,
            teardown_delay=tear, price_per_hour=price, spot_nodes=int(spot),
            spot_price_per_hour=sprice, spot_mean_lifetime=slife, tick=tick,
        )


#: Metric fields averaged across trials (record key -> report attribute).
_METRIC_FIELDS = (
    "total_time", "utilization", "weighted_mean_response",
    "weighted_mean_completion",
)
_COST_FIELDS = (
    "total_cost", "node_hours", "cost_per_job", "cost_per_busy_slot_hour",
    "interruptions", "nodes_provisioned", "elastic_utilization",
)


@dataclass(frozen=True)
class CloudTrialStats:
    """Mean metrics *and* mean cost over one grid cell's trials."""

    policy: str
    autoscaler: str
    trials: int
    total_time: float
    utilization: float
    weighted_mean_response: float
    weighted_mean_completion: float
    total_cost: float
    node_hours: float
    cost_per_job: float
    cost_per_busy_slot_hour: float
    interruptions: float
    nodes_provisioned: float
    elastic_utilization: float

    @property
    def label(self) -> str:
        return f"{self.policy}+{self.autoscaler}"


def run_cloud_once(
    policy_name: str,
    autoscaler_name: str,
    scenario: Optional[CloudScenario] = None,
    submission_gap: float = 90.0,
    rescale_gap: float = 180.0,
    seed: int = 0,
    num_jobs: int = 16,
    retain: str = "full",
    tracer=None,
    with_simulator: bool = False,
):
    """Simulate one workload draw on one (policy, autoscaler) cell.

    Returns the :class:`CloudSimulationResult`; with ``with_simulator``
    the pair ``(result, simulator)`` instead, so callers that need the
    engine's counters (the cloud benchmark suite) share this exact
    wiring instead of duplicating it.
    """
    scenario = scenario or CloudScenario()
    provider = CloudProvider(scenario.pools(), seed=seed)
    simulator = CloudScheduleSimulator(
        REGISTRY.resolve(policy_name, rescale_gap=rescale_gap),
        provider=provider,
        autoscaler=make_autoscaler(autoscaler_name),
        cost_model=CostModel(),
        tick=scenario.tick,
        tracer=tracer,
    )
    spec = WorkloadSpec(
        num_jobs=num_jobs, submission_gap=submission_gap, seed=seed
    )
    result = simulator.run(generate_workload(spec), retain=retain)
    if with_simulator:
        return result, simulator
    return result


def cloud_trial_task(
    policy_name: str,
    autoscaler_name: str,
    scenario: CloudScenario,
    submission_gap: float,
    rescale_gap: float,
    seed: int,
    num_jobs: int = 16,
) -> Tuple:
    """The picklable, cache-hashable unit of one cloud trial."""
    return (
        _TASK_KIND, _TASK_VERSION, policy_name, autoscaler_name,
        submission_gap, rescale_gap, seed, num_jobs, *scenario.flatten(),
    )


def run_cloud_trial_task(task: Tuple) -> dict:
    """Execute one :func:`cloud_trial_task`; returns the JSON record."""
    (kind, version, policy_name, autoscaler_name, submission_gap,
     rescale_gap, seed, num_jobs, *scenario_fields) = task
    if kind != _TASK_KIND or version != _TASK_VERSION:
        raise CloudError(f"not a cloud trial task: {task!r}")
    result = run_cloud_once(
        policy_name,
        autoscaler_name,
        scenario=CloudScenario.unflatten(scenario_fields),
        submission_gap=submission_gap,
        rescale_gap=rescale_gap,
        seed=int(seed),
        num_jobs=int(num_jobs),
        retain="metrics",
    )
    record = {"metrics": result.metrics.as_dict(), "cost": result.cost.as_dict()}
    record["cost"]["elastic_utilization"] = result.cost.elastic_utilization
    return record


def run_cloud_trial_tasks(
    tasks: List[Tuple],
    workers: Optional[int] = None,
    cache=None,
) -> List[dict]:
    """Order-preserving, cache-aware execution of cloud trial tasks.

    The cloud twin of :func:`repro.schedsim.experiment.run_trial_tasks`:
    records already in the content-addressed store are answered from
    disk, only misses fan out across the process pool, and fresh results
    are written back — so an autoscaler × policy grid re-runs for free
    and a one-cell scenario edit re-simulates only that cell.
    """
    from ..workloads.parallel import parallel_map, resolve_workers

    store = resolve_trial_cache(cache)
    results: List[Optional[dict]] = [None] * len(tasks)
    if store is not None:
        for i, task in enumerate(tasks):
            results[i] = store.get_record(task)
    miss_indices = [i for i, found in enumerate(results) if found is None]
    miss_tasks = [tasks[i] for i in miss_indices]
    if miss_tasks:
        if resolve_workers(workers) > 1:
            fresh = parallel_map(
                run_cloud_trial_task, miss_tasks, workers=workers,
                balanced=True,
            )
        else:
            fresh = [run_cloud_trial_task(task) for task in miss_tasks]
        for i, record in zip(miss_indices, fresh):
            results[i] = record
            if store is not None:
                store.put_record(tasks[i], record)
    return results  # type: ignore[return-value]  # every slot now filled


def _aggregate(
    policy_name: str, autoscaler_name: str, records: List[dict]
) -> CloudTrialStats:
    n = float(len(records))
    means = {
        key: sum(r["metrics"][key] for r in records) / n
        for key in _METRIC_FIELDS
    }
    costs = {
        key: sum(r["cost"][key] for r in records) / n for key in _COST_FIELDS
    }
    return CloudTrialStats(
        policy=policy_name,
        autoscaler=autoscaler_name,
        trials=len(records),
        **means,
        **costs,
    )


def compare_cloud(
    policies: Optional[Sequence[str]] = None,
    autoscalers: Sequence[str] = AUTOSCALER_NAMES,
    scenario: Optional[CloudScenario] = None,
    submission_gap: float = 90.0,
    rescale_gap: float = 180.0,
    trials: int = 10,
    base_seed: int = 0,
    num_jobs: int = 16,
    workers: Optional[int] = None,
    cache=None,
) -> Dict[Tuple[str, str], CloudTrialStats]:
    """The autoscaler × policy grid, averaged over paired trials.

    Returns one :class:`CloudTrialStats` per ``(autoscaler, policy)``
    cell; trial *i* of every cell shares seed ``base_seed + i`` (same
    workload draw *and* same spot weather), so cells are paired
    comparisons exactly like the paper's policy tables.  ``policies``
    defaults to the paper's four; any registry-resolved name works.
    """
    if policies is None:
        policies = ("elastic", "moldable", "min_replicas", "max_replicas")
    scenario = scenario or CloudScenario()
    cells = [(a, p) for a in autoscalers for p in policies]
    tasks = [
        cloud_trial_task(policy, autoscaler, scenario, submission_gap,
                         rescale_gap, base_seed + i, num_jobs)
        for autoscaler, policy in cells
        for i in range(trials)
    ]
    records = run_cloud_trial_tasks(tasks, workers=workers, cache=cache)
    return {
        (autoscaler, policy): _aggregate(
            policy, autoscaler, records[c * trials:(c + 1) * trials]
        )
        for c, (autoscaler, policy) in enumerate(cells)
    }
