"""Elastic cluster capacity: the cloud under the scheduler (§2).

Every earlier layer of this reproduction froze ``total_slots`` at
construction; this package makes capacity what it is on a real cloud —
bought, late, billed, and revocable::

    from repro.cloud import (
        NodePool, Node, NodeState, CloudProvider,
        ClusterState, Autoscaler, StaticAutoscaler, QueueDepthAutoscaler,
        UtilizationAutoscaler, IdleTimeoutAutoscaler, make_autoscaler,
        AUTOSCALER_NAMES,
        CostModel, CostReport, BillingMeter,
        CloudScheduleSimulator, CloudSimulationResult,
        CloudScenario, CloudTrialStats, compare_cloud, run_cloud_once,
    )

The policy engine stays the paper's Figure-2/3 algorithm; capacity
changes enter through its ``grow_capacity``/``shrink_capacity``
transitions, and a static fleet is decision-for-decision the fixed
cluster the golden suite pins.
"""

from .autoscaler import (
    AUTOSCALER_NAMES,
    Autoscaler,
    ClusterState,
    IdleTimeoutAutoscaler,
    ProvisioningCircuitBreaker,
    QueueDepthAutoscaler,
    StaticAutoscaler,
    UtilizationAutoscaler,
    make_autoscaler,
)
from .billing import BillingMeter, CostModel, CostReport
from .provider import CloudProvider, Node, NodePool, NodeState
from .simulator import CloudScheduleSimulator, CloudSimulationResult
from .sweep import (
    CloudScenario,
    CloudTrialStats,
    cloud_trial_task,
    compare_cloud,
    run_cloud_once,
    run_cloud_trial_task,
    run_cloud_trial_tasks,
)

__all__ = [
    "NodePool",
    "Node",
    "NodeState",
    "CloudProvider",
    "ClusterState",
    "Autoscaler",
    "StaticAutoscaler",
    "QueueDepthAutoscaler",
    "UtilizationAutoscaler",
    "IdleTimeoutAutoscaler",
    "ProvisioningCircuitBreaker",
    "make_autoscaler",
    "AUTOSCALER_NAMES",
    "CostModel",
    "CostReport",
    "BillingMeter",
    "CloudScheduleSimulator",
    "CloudSimulationResult",
    "CloudScenario",
    "CloudTrialStats",
    "cloud_trial_task",
    "run_cloud_trial_task",
    "run_cloud_trial_tasks",
    "compare_cloud",
    "run_cloud_once",
]
