"""Per-second node billing and the run-level cost report.

Cost is the metric the paper's evaluation never prints but every cloud
deployment optimizes first (the HPC-cloud taxonomy's cost axis).  The
model here is deliberately the real clouds' simplest shape: a node bills
from the moment it is *requested* (you pay while it boots) to the moment
it is gone (teardown included), rounded up to ``billing_increment``
seconds, at its pool's hourly price.  Interrupted spot nodes stop
billing at the reclaim.

:class:`BillingMeter` prices a node ledger into a :class:`CostReport`
whose headline numbers are the ones worth comparing across autoscaler ×
policy cells: total dollars, node-hours, dollars per completed job, and
dollars per *busy* slot-hour (the utilization-weighted cost — what one
hour of actually-used capacity cost, idle overhead amortized in).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from ..errors import CloudError
from .provider import Node

__all__ = ["CostModel", "CostReport", "BillingMeter"]


@dataclass(frozen=True)
class CostModel:
    """Billing rules shared by every pool.

    Parameters
    ----------
    billing_increment:
        Rounding granularity in seconds; 1.0 is the per-second billing
        of modern clouds, 3600.0 reproduces classic per-hour billing.
    minimum_charge:
        Minimum billed seconds per node (some providers bill the first
        minute regardless).
    """

    billing_increment: float = 1.0
    minimum_charge: float = 0.0

    def __post_init__(self):
        if self.billing_increment <= 0:
            raise CloudError("billing_increment must be positive")
        if self.minimum_charge < 0:
            raise CloudError("minimum_charge must be non-negative")

    def billed_seconds(self, span: float) -> float:
        """Round one node's wall-clock span up to billable seconds."""
        if span < 0:
            raise CloudError(f"cannot bill a negative span ({span})")
        increments = math.ceil(span / self.billing_increment)
        return max(increments * self.billing_increment, self.minimum_charge)


@dataclass(frozen=True)
class CostReport:
    """The money row reported next to the §4.3 metrics."""

    total_cost: float
    node_hours: float
    ondemand_cost: float
    spot_cost: float
    nodes_provisioned: int
    interruptions: int
    jobs_completed: int
    busy_slot_hours: float
    capacity_slot_hours: float
    #: Dollars per completed job (inf with zero completions).
    cost_per_job: float
    #: Dollars per busy slot-hour — utilization-weighted cost.
    cost_per_busy_slot_hour: float
    per_pool_cost: Dict[str, float] = field(default_factory=dict)

    @property
    def elastic_utilization(self) -> float:
        """Busy over *provisioned* slot-hours (the denominator breathes)."""
        if self.capacity_slot_hours <= 0:
            return 0.0
        return self.busy_slot_hours / self.capacity_slot_hours

    def as_dict(self) -> Dict[str, float]:
        return {
            "total_cost": self.total_cost,
            "node_hours": self.node_hours,
            "ondemand_cost": self.ondemand_cost,
            "spot_cost": self.spot_cost,
            "nodes_provisioned": self.nodes_provisioned,
            "interruptions": self.interruptions,
            "jobs_completed": self.jobs_completed,
            "busy_slot_hours": self.busy_slot_hours,
            "capacity_slot_hours": self.capacity_slot_hours,
            "cost_per_job": self.cost_per_job,
            "cost_per_busy_slot_hour": self.cost_per_busy_slot_hour,
        }

    def describe(self) -> str:
        return (
            f"${self.total_cost:.2f} over {self.node_hours:.2f} node-hours "
            f"({self.nodes_provisioned} nodes, {self.interruptions} "
            f"interruptions): ${self.cost_per_job:.3f}/job, "
            f"${self.cost_per_busy_slot_hour:.3f}/busy-slot-hour, "
            f"elastic util {self.elastic_utilization * 100:.1f}%"
        )


class BillingMeter:
    """Prices a provider's node ledger at the end of a run."""

    def __init__(self, model: Optional[CostModel] = None):
        self.model = model or CostModel()

    def node_cost(self, node: Node, end: float) -> float:
        """Dollars one node billed inside the window ``[0, end]``.

        The report prices exactly the experiment window: a node still
        alive at the horizon — or whose release lands beyond it, like a
        spot reclaim drawn long after the last job finished — bills to
        ``end``, as if the operator shut the fleet down when the
        workload did.  Teardown tails inside the window bill in full.
        """
        stop = node.released_at if node.released_at is not None else end
        span = max(0.0, min(stop, end) - node.requested_at)
        return self.model.billed_seconds(span) / 3600.0 * node.pool.price_per_hour

    def report(
        self,
        nodes: Iterable[Node],
        end: float,
        jobs_completed: int,
        busy_slot_seconds: float,
        capacity_slot_seconds: float,
        interruptions: int = 0,
    ) -> CostReport:
        """Fold the ledger into a :class:`CostReport`.

        ``end`` is the billing horizon (the last job's completion);
        every node bills inside ``[0, end]`` — still-running nodes
        through the horizon, released nodes to their release (teardown
        included), clipped at the horizon.
        """
        total = ondemand = spot = 0.0
        node_seconds = 0.0
        per_pool: Dict[str, float] = {}
        count = 0
        for node in nodes:
            count += 1
            cost = self.node_cost(node, end)
            total += cost
            per_pool[node.pool.name] = per_pool.get(node.pool.name, 0.0) + cost
            if node.pool.spot:
                spot += cost
            else:
                ondemand += cost
            stop = node.released_at if node.released_at is not None else end
            node_seconds += max(0.0, min(stop, end) - node.requested_at)
        return CostReport(
            total_cost=total,
            node_hours=node_seconds / 3600.0,
            ondemand_cost=ondemand,
            spot_cost=spot,
            nodes_provisioned=count,
            interruptions=interruptions,
            jobs_completed=jobs_completed,
            busy_slot_hours=busy_slot_seconds / 3600.0,
            capacity_slot_hours=capacity_slot_seconds / 3600.0,
            cost_per_job=(
                total / jobs_completed if jobs_completed else float("inf")
            ),
            cost_per_busy_slot_hour=(
                total / (busy_slot_seconds / 3600.0)
                if busy_slot_seconds > 0
                else float("inf")
            ),
            per_pool_cost=per_pool,
        )

