"""Autoscaling policies: how many nodes should the fleet hold right now?

An autoscaler is a pure target function over the observable cluster
state: the simulator snapshots queue depth, slot occupancy, and fleet
size into a :class:`ClusterState` on every scheduling event (plus a
periodic tick) and reconciles the fleet toward
:meth:`Autoscaler.desired_nodes`.  Four policies ship:

* :class:`StaticAutoscaler` — never changes the fleet; with it the cloud
  substrate is bit-for-bit the fixed-capacity simulator every earlier
  layer assumed (the golden-equivalence tests pin this).
* :class:`QueueDepthAutoscaler` — scale out when queued jobs' minimum
  demand cannot fit in the free slots; scale in after the queue has been
  empty and a whole node's worth of slots idle for a cool-down.
* :class:`UtilizationAutoscaler` — hold occupancy inside a target band
  (scale out above ``high``, in below ``low``), with the queue-demand
  rule as a floor so a too-big job can never deadlock below the band.
* :class:`IdleTimeoutAutoscaler` — CLUES-style: power on exactly what a
  stuck queue needs, power off any whole-node chunk of capacity that has
  sat idle longer than ``idle_timeout`` (the indigo-dc elasticity
  manager's ``POWOFF`` rule, transplanted to slot arithmetic).

Autoscalers may keep state between evaluations (idle clocks); they are
constructed per-simulation and never shared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Protocol, runtime_checkable

from ..errors import CloudError

__all__ = [
    "ClusterState",
    "Autoscaler",
    "StaticAutoscaler",
    "QueueDepthAutoscaler",
    "UtilizationAutoscaler",
    "IdleTimeoutAutoscaler",
    "ProvisioningCircuitBreaker",
    "make_autoscaler",
    "AUTOSCALER_NAMES",
]


@dataclass(frozen=True)
class ClusterState:
    """What an autoscaler may observe (one evaluation's snapshot)."""

    now: float
    #: Slots currently schedulable (ready nodes minus drained capacity).
    total_slots: int
    used_slots: int
    free_slots: int
    running_jobs: int
    queued_jobs: int
    #: Sum of ``min_replicas`` over the queue — the slots needed to start
    #: everything currently waiting.
    queued_demand: int
    #: Fleet size counted for scaling: provisioning + ready nodes.
    nodes: int
    pending_nodes: int
    #: Slots one additional node would contribute (first pool with
    #: headroom; scaling arithmetic assumes roughly homogeneous pools).
    slots_per_node: int

    @property
    def utilization(self) -> float:
        return self.used_slots / self.total_slots if self.total_slots else 1.0

    @property
    def unmet_demand(self) -> int:
        """Queue demand the current free slots cannot satisfy."""
        return max(0, self.queued_demand - self.free_slots)


@runtime_checkable
class Autoscaler(Protocol):
    """A fleet-size target policy."""

    name: str

    def desired_nodes(self, state: ClusterState) -> int:
        """The fleet size (provisioning + ready) this policy wants."""
        ...  # pragma: no cover - protocol


def _nodes_for(slots: int, slots_per_node: int) -> int:
    return int(math.ceil(slots / slots_per_node)) if slots > 0 else 0


class StaticAutoscaler:
    """The fixed-fleet baseline: today's constant cluster, as a policy.

    The target is the fleet size first observed, held forever — like a
    managed node group with a pinned desired count.  Without spot pools
    the fleet never deviates, so no capacity event ever fires and the
    run is decision-identical to the fixed-capacity simulator; *with*
    spot pools, holding the target is what replaces interrupted nodes
    (a static fleet that silently shrank on every reclaim could strand
    a rigid job whose pinned width needs the full cluster).
    """

    name = "static"

    def __init__(self):
        self._target: Optional[int] = None

    def desired_nodes(self, state: ClusterState) -> int:
        if self._target is None:
            self._target = state.nodes
        return self._target


class QueueDepthAutoscaler:
    """Scale out for unmet queue demand; scale in after a quiet cool-down.

    Scale-out is demand-sized, not step-sized: enough nodes to cover the
    queued jobs' minimum replicas that the free slots cannot.  Scale-in
    releases whole idle nodes, but only once the queue has been empty
    *and* at least one node's slots free for ``cooldown`` seconds —
    avoiding thrash on bursty arrivals.
    """

    name = "queue"

    def __init__(self, cooldown: float = 300.0):
        if cooldown < 0:
            raise CloudError("cooldown must be non-negative")
        self.cooldown = float(cooldown)
        self._quiet_since: Optional[float] = None

    def desired_nodes(self, state: ClusterState) -> int:
        if state.unmet_demand > 0:
            self._quiet_since = None
            return state.nodes + _nodes_for(state.unmet_demand,
                                            state.slots_per_node)
        if state.queued_jobs == 0 and state.free_slots >= state.slots_per_node:
            if self._quiet_since is None:
                self._quiet_since = state.now
            if state.now - self._quiet_since >= self.cooldown:
                return state.nodes - state.free_slots // state.slots_per_node
        else:
            self._quiet_since = None
        return state.nodes


class UtilizationAutoscaler:
    """Hold slot occupancy inside a [low, high] band, one node per step.

    The queue-demand floor overrides the band: a queued job whose
    minimum cannot fit always triggers scale-out, whatever the current
    occupancy, so the band can never starve a stuck queue.
    """

    name = "utilization"

    def __init__(self, low: float = 0.30, high: float = 0.85):
        if not 0.0 <= low < high <= 1.0:
            raise CloudError(
                f"need 0 <= low < high <= 1, got [{low}, {high}]"
            )
        self.low = float(low)
        self.high = float(high)

    def desired_nodes(self, state: ClusterState) -> int:
        if state.unmet_demand > 0:
            return state.nodes + _nodes_for(state.unmet_demand,
                                            state.slots_per_node)
        if state.total_slots and state.utilization > self.high:
            return state.nodes + 1
        if (
            state.utilization < self.low
            and state.queued_jobs == 0
            and state.free_slots >= state.slots_per_node
        ):
            return state.nodes - 1
        return state.nodes


class IdleTimeoutAutoscaler:
    """CLUES-style elasticity: power on for need, power off after idleness.

    Scale-out mirrors CLUES' scheduler hook — a job that cannot start
    powers on exactly the nodes its minimum needs.  Scale-in mirrors the
    idle-node rule: once at least one node's worth of slots has been
    continuously free for ``idle_timeout`` seconds, every wholly-idle
    node is released at once.
    """

    name = "idle"

    def __init__(self, idle_timeout: float = 600.0):
        if idle_timeout <= 0:
            raise CloudError("idle_timeout must be positive")
        self.idle_timeout = float(idle_timeout)
        self._idle_since: Optional[float] = None

    def desired_nodes(self, state: ClusterState) -> int:
        if state.unmet_demand > 0:
            self._idle_since = None
            return state.nodes + _nodes_for(state.unmet_demand,
                                            state.slots_per_node)
        if state.free_slots >= state.slots_per_node and state.queued_jobs == 0:
            if self._idle_since is None:
                self._idle_since = state.now
            if state.now - self._idle_since >= self.idle_timeout:
                return state.nodes - state.free_slots // state.slots_per_node
        else:
            self._idle_since = None
        return state.nodes


class ProvisioningCircuitBreaker:
    """Hold scale-up after repeated provisioning failures.

    Hammering a provider that keeps failing boots burns billed boot
    windows for nothing (and, on a real cloud, API quota).  The breaker
    counts *consecutive* failures; at ``threshold`` it opens and every
    scale-up request is held for a cool-off that doubles on each
    consecutive trip (capped at ``max_cooloff``).  Any successful boot
    closes it and resets the streak.

    The breaker is deterministic state over deterministic inputs — no
    wall clock, no randomness — so faulted runs stay replayable.
    """

    def __init__(self, threshold: int = 3, cooloff: float = 120.0,
                 max_cooloff: float = 1920.0):
        if threshold < 1:
            raise CloudError("threshold must be >= 1")
        if cooloff <= 0 or max_cooloff < cooloff:
            raise CloudError("need 0 < cooloff <= max_cooloff")
        self.threshold = int(threshold)
        self.cooloff = float(cooloff)
        self.max_cooloff = float(max_cooloff)
        self.failures = 0
        self.trips = 0
        self._consecutive = 0
        self._open_until: Optional[float] = None

    @property
    def open_until(self) -> Optional[float]:
        """When the current hold expires (``None`` = closed)."""
        return self._open_until

    def allows(self, now: float) -> bool:
        """Whether a scale-up request may go to the provider at ``now``."""
        if self._open_until is not None:
            if now < self._open_until:
                return False
            # Half-open: let the next attempt probe the provider.  The
            # streak is preserved, so one more failure re-trips at once.
            self._open_until = None
        return True

    def record_failure(self, now: float) -> bool:
        """Count a failed boot; returns True when this trips the breaker."""
        self.failures += 1
        self._consecutive += 1
        if self._open_until is None and self._consecutive >= self.threshold:
            self.trips += 1
            hold = min(self.max_cooloff,
                       self.cooloff * (2.0 ** (self.trips - 1)))
            self._open_until = now + hold
            return True
        return False

    def record_success(self) -> None:
        """A node came online: close the breaker, reset the streak."""
        self._consecutive = 0
        self._open_until = None


AUTOSCALER_NAMES = ("static", "queue", "utilization", "idle")


def make_autoscaler(name: str, **kwargs) -> Autoscaler:
    """Build one of the shipped autoscaler policies by name."""
    if name == "static":
        return StaticAutoscaler()
    if name == "queue":
        return QueueDepthAutoscaler(**kwargs)
    if name == "utilization":
        return UtilizationAutoscaler(**kwargs)
    if name == "idle":
        return IdleTimeoutAutoscaler(**kwargs)
    raise CloudError(
        f"unknown autoscaler {name!r}; available: {AUTOSCALER_NAMES}"
    )
