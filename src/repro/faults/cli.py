"""`repro faults` verbs: plan synthesis, plan replay, and chaos runs.

All output is derived from virtual time and seeded RNG streams — no
wall-clock values — so two invocations with the same arguments print
byte-identical text.  CI's chaos smoke job runs ``repro faults chaos``
twice and diffs the output; keep it that way.
"""

from __future__ import annotations

import sys

from .plan import FaultLoad, FaultPlan, reference_chaos_plan
from .recovery import RetryPolicy

__all__ = ["main_faults"]


def _print_plan(plan: FaultPlan) -> None:
    print(f"# fault plan: seed={plan.seed} horizon={plan.horizon:.0f}s "
          f"entries={len(plan.entries)}")
    print(f"{'t':>9} {'kind':>18} {'pool':>8} {'notice':>7} "
          f"{'duration':>9} {'count':>6}")
    for entry in plan.entries:
        print(
            f"{entry.time:>9.1f} {entry.kind:>18} "
            f"{entry.pool or '-':>8} {entry.notice:>7.1f} "
            f"{entry.duration:>9.1f} "
            f"{entry.count if entry.count is not None else '-':>6}"
        )


def _report_run(label: str, run) -> None:
    report = run.faults
    print(f"## {label}")
    print(f"decision digest: {run.digest}")
    print(f"decisions: {len(run.decisions)}  "
          f"makespan: {run.result.makespan:.1f}s")
    if report is not None:
        print(report.describe())


def _retry_policy(args) -> RetryPolicy:
    return RetryPolicy(max_retries=args.max_retries,
                       base_delay=args.retry_base_delay)


def _cmd_plan(args) -> int:
    load = FaultLoad(
        crashes=args.crashes,
        interruptions=args.interruptions,
        notice=args.notice,
        fail_windows=args.fail_windows,
        timeout_windows=args.timeout_windows,
        shortage_windows=args.shortage_windows,
        window_duration=args.window_duration,
        pool=args.pool,
    )
    plan = FaultPlan.synthesize(args.seed, args.horizon, load)
    if args.output:
        plan.save(args.output)
        print(f"wrote {args.output} ({len(plan.entries)} entries)")
    _print_plan(plan)
    return 0


def _cmd_replay(args) -> int:
    from .runner import run_fault_scenario

    if args.plan:
        plan = FaultPlan.load(args.plan)
    else:
        plan = reference_chaos_plan(seed=args.seed)
    _print_plan(plan)
    print()
    run = run_fault_scenario(
        policy_name=args.policy,
        autoscaler_name=args.autoscaler,
        plan=plan,
        seed=args.seed,
        num_jobs=args.jobs,
        submission_gap=args.gap,
        rescale_gap=args.rescale_gap,
        checkpoints=not args.no_checkpoints,
        retry=_retry_policy(args),
    )
    label = ("replay (checkpoints off)" if args.no_checkpoints
             else "replay (checkpoints on)")
    _report_run(label, run)
    return 0


def _cmd_chaos(args) -> int:
    from .runner import run_fault_scenario

    plan = reference_chaos_plan(seed=args.seed)
    print(f"# chaos: reference plan, seed={args.seed}, {args.jobs} jobs "
          f"@ {args.gap:.0f}s")
    _print_plan(plan)
    print()
    runs = {}
    for label, checkpoints in (("checkpoints on", True),
                               ("checkpoints off", False)):
        runs[label] = run_fault_scenario(
            policy_name=args.policy,
            autoscaler_name=args.autoscaler,
            plan=plan,
            seed=args.seed,
            num_jobs=args.jobs,
            submission_gap=args.gap,
            rescale_gap=args.rescale_gap,
            checkpoints=checkpoints,
            retry=_retry_policy(args),
        )
        _report_run(label, runs[label])
        print()
    on = runs["checkpoints on"].faults
    off = runs["checkpoints off"].faults
    delta = on.goodput_slot_seconds - off.goodput_slot_seconds
    print("## recovery delta (on - off)")
    print(f"goodput delta: {delta:+.1f} slot-seconds")
    print(f"goodput fraction: {on.goodput_fraction:.4f} (on) vs "
          f"{off.goodput_fraction:.4f} (off)")
    print(f"recovered slot-seconds: {on.recovered_slot_seconds:.1f} (on) vs "
          f"{off.recovered_slot_seconds:.1f} (off)")
    return 0


def main_faults(args) -> int:
    if args.action == "plan":
        return _cmd_plan(args)
    if args.action == "replay":
        return _cmd_replay(args)
    if args.action == "chaos":
        return _cmd_chaos(args)
    print(f"error: unknown faults action {args.action!r}", file=sys.stderr)
    return 2
