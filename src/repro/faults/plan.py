"""Deterministic, replayable fault plans for the cloud substrate.

A :class:`FaultPlan` is the single input that makes failure a first-class
scenario parameter: a seed, a horizon, and a sorted timeline of
:class:`FaultEvent` entries.  Plans come from two sources that compose —
seeded generators (:meth:`FaultPlan.synthesize` draws event times from a
named :func:`repro.sim.rng.stream`, so the same ``(seed, load)`` always
yields the same timeline) and explicit hand-written entries (via the
constructor or :meth:`FaultPlan.extend`).  Either way the plan
round-trips through JSON, so a chaos run observed in CI can be replayed
locally byte-for-byte with ``repro faults replay``.

Five fault kinds cover the failure modes the HPC-on-cloud literature
calls out (provisioning failures and retries per Armstrong et al.'s
Cloud Scheduler; interruption notice windows per the spot-market
survey):

``node_crash``
    A node disappears with no warning: running work is lost.
``spot_interrupt``
    A reclaim *notice* arrives ``notice`` seconds before the node is
    taken, giving the scheduler a window to checkpoint.
``provision_fail``
    For ``duration`` seconds, boot attempts fail after ``delay`` seconds
    (default: half the pool's provisioning delay).
``provision_timeout``
    Like ``provision_fail`` but the attempt hangs first — the failure is
    detected only after ``delay`` seconds (default: 3x the pool's
    provisioning delay).
``capacity_shortage``
    For ``duration`` seconds the pool has no capacity: requests are
    rejected immediately.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import FaultPlanError
from ..sim.rng import stream

__all__ = [
    "FAULT_KINDS",
    "WINDOW_KINDS",
    "FaultEvent",
    "FaultLoad",
    "FaultPlan",
    "reference_chaos_plan",
]

PLAN_SCHEMA_VERSION = 1

#: Point events strike one node at a fixed time.
POINT_KINDS = ("node_crash", "spot_interrupt")
#: Window events degrade provisioning for a span of time.
WINDOW_KINDS = ("provision_fail", "provision_timeout", "capacity_shortage")
FAULT_KINDS = POINT_KINDS + WINDOW_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One entry on a fault timeline.

    ``pool`` restricts the event to a named node pool (``None`` = any).
    ``notice`` applies to ``spot_interrupt``; ``duration``/``count``/
    ``delay`` apply to the window kinds (``count`` caps how many boot
    attempts the window may affect, ``None`` = unlimited).
    """

    kind: str
    time: float
    pool: Optional[str] = None
    notice: float = 0.0
    duration: float = 0.0
    count: Optional[int] = None
    delay: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.time < 0.0:
            raise FaultPlanError(f"fault time must be >= 0, got {self.time}")
        if self.kind == "spot_interrupt" and self.notice < 0.0:
            raise FaultPlanError(
                f"notice must be >= 0, got {self.notice}"
            )
        if self.kind in WINDOW_KINDS and self.duration <= 0.0:
            raise FaultPlanError(
                f"{self.kind} requires a positive duration, got "
                f"{self.duration}"
            )
        if self.count is not None and self.count <= 0:
            raise FaultPlanError(f"count must be positive, got {self.count}")
        if self.delay is not None and self.delay < 0.0:
            raise FaultPlanError(f"delay must be >= 0, got {self.delay}")

    @property
    def end(self) -> float:
        """When the event stops mattering (== ``time`` for point events)."""
        return self.time + self.duration

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"kind": self.kind, "time": self.time}
        if self.pool is not None:
            out["pool"] = self.pool
        if self.kind == "spot_interrupt":
            out["notice"] = self.notice
        if self.kind in WINDOW_KINDS:
            out["duration"] = self.duration
            if self.count is not None:
                out["count"] = self.count
            if self.delay is not None:
                out["delay"] = self.delay
        return out

    @classmethod
    def from_dict(cls, data: object) -> "FaultEvent":
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"fault entry must be an object, got {type(data).__name__}"
            )
        known = {"kind", "time", "pool", "notice", "duration", "count",
                 "delay"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise FaultPlanError(
                f"unknown fault entry fields: {', '.join(unknown)}"
            )
        try:
            return cls(
                kind=str(data.get("kind", "")),
                time=float(data.get("time", -1.0)),
                pool=(None if data.get("pool") is None
                      else str(data["pool"])),
                notice=float(data.get("notice", 0.0)),
                duration=float(data.get("duration", 0.0)),
                count=(None if data.get("count") is None
                       else int(data["count"])),
                delay=(None if data.get("delay") is None
                       else float(data["delay"])),
            )
        except (TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault entry: {exc}") from exc


def _sort_key(entry: FaultEvent) -> Tuple[float, str, str]:
    return (entry.time, entry.kind, entry.pool or "")


@dataclass(frozen=True)
class FaultLoad:
    """Generator spec: how much fault pressure to synthesize per horizon.

    Counts are exact (not expected values): ``crashes=2`` draws exactly
    two crash times, uniformly over the middle 90% of the horizon.
    """

    crashes: int = 0
    interruptions: int = 0
    notice: float = 120.0
    fail_windows: int = 0
    timeout_windows: int = 0
    shortage_windows: int = 0
    window_duration: float = 600.0
    pool: Optional[str] = None

    def __post_init__(self) -> None:
        for name in ("crashes", "interruptions", "fail_windows",
                     "timeout_windows", "shortage_windows"):
            if getattr(self, name) < 0:
                raise FaultPlanError(f"{name} must be >= 0")
        if self.notice < 0.0:
            raise FaultPlanError("notice must be >= 0")
        if self.window_duration <= 0.0:
            raise FaultPlanError("window_duration must be positive")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, sorted fault timeline with a JSON round-trip."""

    seed: int = 0
    horizon: float = 0.0
    entries: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.entries, key=_sort_key))
        object.__setattr__(self, "entries", ordered)

    @property
    def is_zero(self) -> bool:
        """True when the plan injects nothing (healthy-cloud baseline)."""
        return not self.entries

    def extend(self, entries: Iterable[FaultEvent]) -> "FaultPlan":
        """A new plan with ``entries`` merged into the timeline."""
        return replace(self, entries=self.entries + tuple(entries))

    # -- JSON round-trip ------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": PLAN_SCHEMA_VERSION,
            "seed": self.seed,
            "horizon": self.horizon,
            "entries": [entry.as_dict() for entry in self.entries],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, data: object) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultPlanError(
                f"fault plan must be an object, got {type(data).__name__}"
            )
        schema = data.get("schema", PLAN_SCHEMA_VERSION)
        if schema != PLAN_SCHEMA_VERSION:
            raise FaultPlanError(
                f"unsupported fault-plan schema {schema!r} "
                f"(this build reads schema {PLAN_SCHEMA_VERSION})"
            )
        raw_entries = data.get("entries", [])
        if not isinstance(raw_entries, list):
            raise FaultPlanError("fault plan 'entries' must be a list")
        try:
            seed = int(data.get("seed", 0))
            horizon = float(data.get("horizon", 0.0))
        except (TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from exc
        entries = tuple(FaultEvent.from_dict(raw) for raw in raw_entries)
        return cls(seed=seed, horizon=horizon, entries=entries)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultPlanError(f"fault plan is not valid JSON: {exc}") \
                from exc
        return cls.from_dict(data)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            raise FaultPlanError(f"cannot read fault plan: {exc}") from exc
        return cls.from_json(text)

    # -- synthesis ------------------------------------------------------

    @classmethod
    def synthesize(cls, seed: int, horizon: float,
                   load: FaultLoad) -> "FaultPlan":
        """Draw a timeline from the ``faults.plan`` stream of ``seed``.

        Draw order is fixed (crashes, interruptions, fail, timeout,
        shortage) so a given ``(seed, horizon, load)`` always produces
        the same plan, and per-kind draws never shift each other.
        """
        if horizon <= 0.0:
            raise FaultPlanError(
                f"synthesize requires a positive horizon, got {horizon}"
            )
        rng = stream(seed, "faults.plan")
        lo, hi = 0.05 * horizon, 0.95 * horizon

        def times(n: int) -> List[float]:
            if n <= 0:
                return []
            return sorted(float(t) for t in rng.uniform(lo, hi, size=n))

        entries: List[FaultEvent] = []
        for t in times(load.crashes):
            entries.append(FaultEvent("node_crash", time=t, pool=load.pool))
        for t in times(load.interruptions):
            entries.append(FaultEvent("spot_interrupt", time=t,
                                      pool=load.pool, notice=load.notice))
        for kind, n in (("provision_fail", load.fail_windows),
                        ("provision_timeout", load.timeout_windows),
                        ("capacity_shortage", load.shortage_windows)):
            for t in times(n):
                entries.append(FaultEvent(kind, time=t, pool=load.pool,
                                          duration=load.window_duration))
        return cls(seed=seed, horizon=horizon, entries=tuple(entries))


def reference_chaos_plan(seed: int = 7,
                         horizon: float = 2400.0) -> FaultPlan:
    """The committed chaos scenario used by CI, the bench suite, and docs.

    Mixes synthesized pressure (crashes + noticed interruptions drawn
    from the seed) with explicit entries that pin the corner cases: a
    notice window too short to checkpoint in, a provisioning-failure
    window, a hang-then-timeout window, and a capacity shortage.

    The default horizon matches the reference chaos workload's healthy
    makespan (:func:`repro.faults.runner.chaos_scenario` with 24 jobs at
    a 60 s gap finishes near t=2000), so the injected pressure lands
    while jobs are actually running.
    """
    plan = FaultPlan.synthesize(
        seed, horizon,
        FaultLoad(crashes=2, interruptions=3, notice=180.0),
    )
    return plan.extend((
        FaultEvent("spot_interrupt", time=0.30 * horizon, notice=1.0),
        FaultEvent("provision_fail", time=0.35 * horizon,
                   duration=900.0, delay=45.0),
        FaultEvent("provision_timeout", time=0.55 * horizon,
                   duration=600.0, delay=240.0),
        FaultEvent("capacity_shortage", time=0.75 * horizon,
                   duration=600.0),
    ))
