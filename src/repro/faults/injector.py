"""Threads a :class:`FaultPlan` through a live provider + engine.

The injector is deliberately provider-shaped rather than
provider-importing: it drives the ``CloudProvider`` through its public
fault hooks (``fault_victim``, ``crash_node``, ``interrupt_with_notice``)
so this package never imports the cloud layer and the cloud layer can
import this one without a cycle.

One injector serves one simulation: point events (crashes, noticed
interruptions) are posted on the engine at bind time, window events
(provisioning failures/timeouts, capacity shortages) are consulted
synchronously by ``CloudProvider`` on every boot attempt via
:meth:`provision_outcome`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import FaultPlanError
from ..sim.rng import stream
from .plan import WINDOW_KINDS, FaultEvent, FaultPlan
from .recovery import RetryPolicy

__all__ = ["FaultInjector"]


class _Window:
    """A window entry plus its remaining affected-attempt budget."""

    __slots__ = ("entry", "remaining")

    def __init__(self, entry: FaultEvent):
        self.entry = entry
        self.remaining = entry.count  # None = unlimited

    def matches(self, pool_name: str, now: float) -> bool:
        entry = self.entry
        if entry.pool is not None and entry.pool != pool_name:
            return False
        if not entry.time <= now < entry.end:
            return False
        return self.remaining is None or self.remaining > 0

    def consume(self) -> None:
        if self.remaining is not None:
            self.remaining -= 1


class FaultInjector:
    """Replays one fault plan against one provider/engine pair."""

    def __init__(self, plan: FaultPlan,
                 retry: Optional[RetryPolicy] = None):
        self.plan = plan
        self.retry = RetryPolicy() if retry is None else retry
        self._windows = [_Window(e) for e in plan.entries
                         if e.kind in WINDOW_KINDS]
        self._points = [e for e in plan.entries
                        if e.kind not in WINDOW_KINDS]
        self._retry_rng = stream(plan.seed, "faults.retry")
        self._provider = None
        #: Point events that found no live node to strike.
        self.skipped_events = 0

    def bind(self, provider, engine) -> None:
        """Schedule the point events; called once by ``CloudProvider``."""
        if self._provider is not None:
            raise FaultPlanError("fault injector is already bound")
        self._provider = provider
        for entry in self._points:
            engine.post_at(entry.time, self._fire, entry)

    # -- provisioning outcomes -----------------------------------------

    def provision_outcome(
        self, pool, now: float
    ) -> Optional[Tuple[str, float]]:
        """Fate of a boot attempt on ``pool`` at ``now``.

        Returns ``None`` (healthy boot) or ``(kind, delay)`` where
        ``kind`` is ``"fail"``/``"timeout"``/``"shortage"`` and
        ``delay`` is how long the attempt burns before the failure is
        observed.  Windows are consulted in timeline order; the first
        match wins and consumes one unit of its ``count`` budget.
        """
        for window in self._windows:
            if not window.matches(pool.name, now):
                continue
            window.consume()
            entry = window.entry
            if entry.kind == "capacity_shortage":
                return ("shortage", 0.0)
            if entry.kind == "provision_timeout":
                delay = (entry.delay if entry.delay is not None
                         else 3.0 * pool.provision_delay)
                return ("timeout", delay)
            delay = (entry.delay if entry.delay is not None
                     else 0.5 * pool.provision_delay)
            return ("fail", delay)
        return None

    def backoff(self, attempt: int) -> float:
        """Deterministic retry delay for the given (0-based) attempt."""
        return self.retry.backoff(attempt, self._retry_rng)

    def window_closings(self) -> List[float]:
        """When degraded-provisioning windows end.

        The simulator wakes itself at these instants so a queue stalled
        behind a shortage re-provisions as soon as capacity returns,
        even if the tick clock has wound down.
        """
        return sorted({w.entry.end for w in self._windows})

    # -- point events ---------------------------------------------------

    def _fire(self, entry: FaultEvent) -> None:
        provider = self._provider
        node = provider.fault_victim(entry.pool)
        if node is None:
            self.skipped_events += 1
            return
        if entry.kind == "node_crash":
            provider.crash_node(node)
        else:
            provider.interrupt_with_notice(node, entry.notice)
