"""End-to-end chaos runs: one wiring shared by CLI, bench, and tests.

A chaos run is :func:`repro.cloud.sweep.run_cloud_once` with the fault
stack attached: a provider carrying a :class:`FaultInjector`, an
optional :class:`~repro.charm.faulttolerance.DiskCheckpointStore` for
notice-window recovery, and a serialized decision log whose SHA-256
digest makes determinism checkable from the command line (two runs of
the same plan must print the same digest — CI asserts exactly this).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from ..charm.faulttolerance import DiskCheckpointStore
from ..cloud.provider import CloudProvider
from ..cloud.simulator import CloudScheduleSimulator, CloudSimulationResult
from ..cloud.sweep import CloudScenario
from ..cloud.autoscaler import make_autoscaler
from ..scheduling.registry import REGISTRY
from ..schedsim.workload import WorkloadSpec, generate_workload
from .injector import FaultInjector
from .plan import FaultPlan, reference_chaos_plan
from .recovery import RetryPolicy

__all__ = [
    "ChaosRun",
    "chaos_scenario",
    "run_fault_scenario",
    "serialize_decision",
    "decision_digest",
]


def chaos_scenario() -> CloudScenario:
    """The fleet the reference chaos plan targets.

    A small on-demand core plus a spot wing whose *natural* interruption
    rate is negligible (one-day mean lifetime) — the injected plan, not
    the background spot weather, is the failure source, so every fault
    in the run is attributable to a plan entry.  The fleet is sized well
    below the workload's aggregate min-replica demand, so jobs run at
    min replicas and a reclaimed node *must* evict someone — the
    recovery path, not elastic shrinking, absorbs the fault.
    """
    return CloudScenario(
        initial_nodes=2,
        min_nodes=1,
        max_nodes=4,
        provision_delay=60.0,
        spot_nodes=2,
        spot_mean_lifetime=86400.0,
    )


def serialize_decision(decision) -> Tuple:
    """A decision as plain comparable data (the golden-suite encoding)."""
    extra = tuple(
        (field, getattr(decision, field))
        for field in ("replicas", "from_replicas", "to_replicas",
                      "released_replicas")
        if hasattr(decision, field)
    )
    return (type(decision).__name__, decision.job.name, extra)


def decision_digest(decisions, makespan: Optional[float] = None) -> str:
    """SHA-256 over the serialized decision log (plus the makespan)."""
    digest = hashlib.sha256()
    for decision in decisions:
        digest.update(repr(decision).encode("utf-8"))
    if makespan is not None:
        digest.update(repr(makespan).encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class ChaosRun:
    """One faulted simulation plus its determinism fingerprint."""

    result: CloudSimulationResult
    decisions: Tuple[Tuple, ...]
    digest: str

    @property
    def faults(self):
        return self.result.faults


def run_fault_scenario(
    policy_name: str = "elastic",
    autoscaler_name: str = "queue",
    scenario: Optional[CloudScenario] = None,
    plan: Optional[FaultPlan] = None,
    seed: int = 0,
    num_jobs: int = 24,
    submission_gap: float = 60.0,
    rescale_gap: float = 180.0,
    checkpoints: bool = True,
    retry: Optional[RetryPolicy] = None,
    retain: str = "full",
    tracer=None,
    with_simulator: bool = False,
):
    """Run one workload under one fault plan; returns a :class:`ChaosRun`.

    ``plan=None`` uses :func:`reference_chaos_plan` seeded with ``seed``.
    ``checkpoints=False`` disables notice-window recovery (the
    lost-everything baseline the goodput delta is measured against).
    """
    scenario = scenario or chaos_scenario()
    if plan is None:
        plan = reference_chaos_plan(seed=seed)
    injector = FaultInjector(plan, retry=retry)
    provider = CloudProvider(scenario.pools(), seed=seed, faults=injector)
    store = DiskCheckpointStore() if checkpoints else None
    simulator = CloudScheduleSimulator(
        REGISTRY.resolve(policy_name, rescale_gap=rescale_gap),
        provider=provider,
        autoscaler=make_autoscaler(autoscaler_name),
        tick=scenario.tick,
        tracer=tracer,
        checkpoints=store,
    )
    spec = WorkloadSpec(
        num_jobs=num_jobs, submission_gap=submission_gap, seed=seed
    )
    result = simulator.run(generate_workload(spec), retain=retain)
    decisions = tuple(
        serialize_decision(d) for d in simulator.policy.decision_log
    )
    run = ChaosRun(
        result=result,
        decisions=decisions,
        digest=decision_digest(decisions, result.makespan),
    )
    if with_simulator:
        return run, simulator
    return run
