"""Recovery policy and lost/recovered-work accounting.

The quantities this module tracks are the paper-adjacent ones the
reproduction could not previously measure: *throughput* (busy
slot-seconds, what the cluster executed) versus *goodput* (busy
slot-seconds that contributed to a completed job — work redone after a
crash or a missed checkpoint window counts against it), plus the retry
and checkpoint counters that explain the gap between the two.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional

from ..errors import FaultPlanError

__all__ = ["RetryPolicy", "FaultStats", "FaultReport"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    ``backoff(attempt, rng)`` returns ``min(max_delay, base_delay *
    2**attempt)`` stretched by up to ``jitter`` (a uniform draw from the
    injector's ``faults.retry`` stream, so reruns reproduce the exact
    retry timeline).  ``max_retries=0`` disables retrying.
    """

    max_retries: int = 4
    base_delay: float = 30.0
    max_delay: float = 480.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise FaultPlanError("max_retries must be >= 0")
        if self.base_delay <= 0.0 or self.max_delay <= 0.0:
            raise FaultPlanError("backoff delays must be positive")
        if not 0.0 <= self.jitter <= 1.0:
            raise FaultPlanError("jitter must be in [0, 1]")

    def backoff(self, attempt: int, rng=None) -> float:
        delay = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        if self.jitter > 0.0 and rng is not None:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay


@dataclass
class FaultStats:
    """Mutable counters accumulated while a faulted simulation runs."""

    crashes: int = 0
    notices: int = 0
    evictions: int = 0
    checkpoints_written: int = 0
    checkpoints_missed: int = 0
    restarts_from_checkpoint: int = 0
    restarts_from_scratch: int = 0
    provision_failures: int = 0
    provision_timeouts: int = 0
    provision_retries: int = 0
    capacity_shortages: int = 0
    breaker_trips: int = 0
    lost_slot_seconds: float = 0.0
    recovered_slot_seconds: float = 0.0


@dataclass(frozen=True)
class FaultReport:
    """What failure cost a run, and what recovery clawed back.

    ``throughput_slot_seconds`` is everything the cluster executed;
    ``goodput_slot_seconds`` subtracts work that had to be redone
    (``lost_slot_seconds``).  ``recovered_slot_seconds`` is progress an
    eviction would have destroyed but a checkpoint preserved — the
    direct value of the notice-window checkpointing path.
    """

    throughput_slot_seconds: float
    goodput_slot_seconds: float
    goodput_fraction: float
    lost_slot_seconds: float
    recovered_slot_seconds: float
    crashes: int
    interruptions: int
    notices: int
    evictions: int
    checkpoints_written: int
    checkpoints_missed: int
    restarts_from_checkpoint: int
    restarts_from_scratch: int
    provision_failures: int
    provision_timeouts: int
    provision_retries: int
    capacity_shortages: int
    breaker_trips: int

    @classmethod
    def build(cls, stats: FaultStats, busy_slot_seconds: float,
              interruptions: int) -> "FaultReport":
        lost = min(stats.lost_slot_seconds, busy_slot_seconds)
        goodput = max(0.0, busy_slot_seconds - lost)
        fraction = goodput / busy_slot_seconds if busy_slot_seconds else 1.0
        return cls(
            throughput_slot_seconds=busy_slot_seconds,
            goodput_slot_seconds=goodput,
            goodput_fraction=fraction,
            lost_slot_seconds=lost,
            recovered_slot_seconds=stats.recovered_slot_seconds,
            crashes=stats.crashes,
            interruptions=interruptions,
            notices=stats.notices,
            evictions=stats.evictions,
            checkpoints_written=stats.checkpoints_written,
            checkpoints_missed=stats.checkpoints_missed,
            restarts_from_checkpoint=stats.restarts_from_checkpoint,
            restarts_from_scratch=stats.restarts_from_scratch,
            provision_failures=stats.provision_failures,
            provision_timeouts=stats.provision_timeouts,
            provision_retries=stats.provision_retries,
            capacity_shortages=stats.capacity_shortages,
            breaker_trips=stats.breaker_trips,
        )

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    def describe(self) -> str:
        lines = [
            "fault report:",
            f"  goodput            "
            f"{self.goodput_slot_seconds:,.0f} / "
            f"{self.throughput_slot_seconds:,.0f} slot-s "
            f"({self.goodput_fraction:.1%})",
            f"  lost / recovered   {self.lost_slot_seconds:,.0f} / "
            f"{self.recovered_slot_seconds:,.0f} slot-s",
            f"  interruptions      {self.interruptions} "
            f"({self.notices} noticed, {self.crashes} crashes)",
            f"  evictions          {self.evictions} "
            f"({self.restarts_from_checkpoint} restarted from checkpoint, "
            f"{self.restarts_from_scratch} from scratch)",
            f"  checkpoints        {self.checkpoints_written} written, "
            f"{self.checkpoints_missed} missed the window",
            f"  provisioning       {self.provision_failures} failures "
            f"({self.provision_timeouts} timeouts), "
            f"{self.provision_retries} retries, "
            f"{self.capacity_shortages} shortages, "
            f"{self.breaker_trips} breaker trips",
        ]
        return "\n".join(lines)
