"""Deterministic fault injection and recovery (`repro.faults`).

The fault stack has three layers:

* :mod:`~repro.faults.plan` — serializable fault plans: seeded
  synthesis plus explicit timeline entries for node crashes, spot
  interruptions with a notice window, provisioning failures/timeouts,
  and capacity shortages.
* :mod:`~repro.faults.injector` — binds a plan to a
  :class:`~repro.cloud.provider.CloudProvider` + engine pair and fires
  it; also owns the retry/backoff RNG stream.
* :mod:`~repro.faults.recovery` — retry policy, fault statistics, and
  the goodput-vs-throughput :class:`FaultReport`.

End-to-end wiring (chaos runs, decision digests) lives in
:mod:`~repro.faults.runner`, which is imported lazily by consumers:
``runner`` imports :mod:`repro.cloud`, and ``cloud.simulator`` imports
this package's recovery types, so an eager import here would cycle.
"""

from .injector import FaultInjector
from .plan import (
    FAULT_KINDS,
    FaultEvent,
    FaultLoad,
    FaultPlan,
    reference_chaos_plan,
)
from .recovery import FaultReport, FaultStats, RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultLoad",
    "FaultPlan",
    "FaultReport",
    "FaultStats",
    "RetryPolicy",
    "reference_chaos_plan",
]
