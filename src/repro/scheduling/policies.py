"""The four scheduling policies of the evaluation (§4.3).

All four share one implementation — the Figure-2/3 elastic algorithm —
parameterized exactly as the paper emulates them (§4.3.2):

* **elastic** — the real thing.
* **moldable** — "emulated by setting a large T_rescale_gap value to
  prevent the jobs from rescaling after they are launched".
* **rigid-min** (``min_replicas``) — "emulated by setting the same value
  for min_replicas and max_replicas" = the job's minimum.
* **rigid-max** (``max_replicas``) — likewise pinned to the maximum.
"""

from __future__ import annotations

import math
from typing import Optional

from .job import JobRequest
from .policy import PolicyConfig

__all__ = ["make_policy", "POLICY_NAMES", "DEFAULT_RESCALE_GAP"]

#: The T_rescale_gap used throughout the paper's experiments.
DEFAULT_RESCALE_GAP = 180.0

POLICY_NAMES = ("elastic", "moldable", "min_replicas", "max_replicas")


def _pin_min(request: JobRequest) -> JobRequest:
    return request.with_rigid_replicas(request.min_replicas)


def _pin_max(request: JobRequest) -> JobRequest:
    return request.with_rigid_replicas(request.max_replicas)


def make_policy(
    name: str,
    rescale_gap: float = DEFAULT_RESCALE_GAP,
    launcher_slots: int = 0,
    shrink_filter=None,
) -> PolicyConfig:
    """Build the :class:`PolicyConfig` for one of the paper's policies.

    >>> make_policy("moldable").is_moldable
    True
    >>> make_policy("min_replicas").job_transform(
    ...     JobRequest("j", min_replicas=2, max_replicas=8)).max_replicas
    2
    """
    if name == "elastic":
        return PolicyConfig(
            name=name,
            rescale_gap=rescale_gap,
            launcher_slots=launcher_slots,
            shrink_filter=shrink_filter,
        )
    if name == "moldable":
        return PolicyConfig(
            name=name,
            rescale_gap=math.inf,
            launcher_slots=launcher_slots,
            shrink_filter=shrink_filter,
        )
    if name == "min_replicas":
        return PolicyConfig(
            name=name,
            rescale_gap=rescale_gap,
            launcher_slots=launcher_slots,
            job_transform=_pin_min,
            shrink_filter=shrink_filter,
        )
    if name == "max_replicas":
        return PolicyConfig(
            name=name,
            rescale_gap=rescale_gap,
            launcher_slots=launcher_slots,
            job_transform=_pin_max,
            shrink_filter=shrink_filter,
        )
    raise ValueError(f"unknown policy {name!r}; available: {POLICY_NAMES}")
