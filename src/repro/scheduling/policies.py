"""The four scheduling policies of the evaluation (§4.3), as registry
residents.

All four share one implementation — the Figure-2/3 elastic algorithm —
parameterized exactly as the paper emulates them (§4.3.2):

* **elastic** — the real thing.
* **moldable** — "emulated by setting a large T_rescale_gap value to
  prevent the jobs from rescaling after they are launched".
* **rigid-min** (``min_replicas``) — "emulated by setting the same value
  for min_replicas and max_replicas" = the job's minimum.
* **rigid-max** (``max_replicas``) — likewise pinned to the maximum.

Each is a named factory on :data:`repro.scheduling.registry.REGISTRY`
(``paper=True``); the golden decision-log suite pins registry-resolved
configs byte-identical to the original ``make_policy`` constructions.
:func:`make_policy` survives as a thin shim emitting
``DeprecationWarning`` — new code resolves through the registry::

    from repro.scheduling.registry import resolve
    config = resolve("elastic", rescale_gap=90.0)
"""

from __future__ import annotations

import math
import warnings

from .job import JobRequest
from .policy import PolicyConfig
from .registry import REGISTRY

__all__ = ["make_policy", "POLICY_NAMES", "DEFAULT_RESCALE_GAP"]

#: The T_rescale_gap used throughout the paper's experiments.
DEFAULT_RESCALE_GAP = 180.0


def _pin_min(request: JobRequest) -> JobRequest:
    return request.with_rigid_replicas(request.min_replicas)


def _pin_max(request: JobRequest) -> JobRequest:
    return request.with_rigid_replicas(request.max_replicas)


@REGISTRY.register(
    "elastic", paper=True, tags=("paper",),
    description="§3.2 priority-based elastic scheduling (the contribution)",
)
def _elastic(
    rescale_gap: float = DEFAULT_RESCALE_GAP,
    launcher_slots: int = 0,
    shrink_filter=None,
) -> PolicyConfig:
    return PolicyConfig(
        name="elastic",
        rescale_gap=rescale_gap,
        launcher_slots=launcher_slots,
        shrink_filter=shrink_filter,
    )


@REGISTRY.register(
    "moldable", paper=True, tags=("paper",),
    description="size chosen at start, never rescaled (T_rescale_gap = inf)",
)
def _moldable(
    rescale_gap: float = DEFAULT_RESCALE_GAP,  # accepted and ignored
    launcher_slots: int = 0,
    shrink_filter=None,
) -> PolicyConfig:
    return PolicyConfig(
        name="moldable",
        rescale_gap=math.inf,
        launcher_slots=launcher_slots,
        shrink_filter=shrink_filter,
    )


@REGISTRY.register(
    "min_replicas", paper=True, tags=("paper", "rigid"),
    description="rigid baseline: every job pinned to its minimum size",
)
def _min_replicas(
    rescale_gap: float = DEFAULT_RESCALE_GAP,
    launcher_slots: int = 0,
    shrink_filter=None,
) -> PolicyConfig:
    return PolicyConfig(
        name="min_replicas",
        rescale_gap=rescale_gap,
        launcher_slots=launcher_slots,
        job_transform=_pin_min,
        shrink_filter=shrink_filter,
    )


@REGISTRY.register(
    "max_replicas", paper=True, tags=("paper", "rigid"),
    description="rigid baseline: every job pinned to its maximum size",
)
def _max_replicas(
    rescale_gap: float = DEFAULT_RESCALE_GAP,
    launcher_slots: int = 0,
    shrink_filter=None,
) -> PolicyConfig:
    return PolicyConfig(
        name="max_replicas",
        rescale_gap=rescale_gap,
        launcher_slots=launcher_slots,
        job_transform=_pin_max,
        shrink_filter=shrink_filter,
    )


#: The paper's four policy names, in the evaluation's order.  Kept as a
#: module constant for the reproduction tables; anything enumerating
#: *available* policies should call ``registry.list_policies()`` instead.
POLICY_NAMES = REGISTRY.paper_policies()


def make_policy(
    name: str,
    rescale_gap: float = DEFAULT_RESCALE_GAP,
    launcher_slots: int = 0,
    shrink_filter=None,
) -> PolicyConfig:
    """Deprecated shim over ``registry.resolve(name, ...)``.

    >>> import warnings
    >>> with warnings.catch_warnings():
    ...     warnings.simplefilter("ignore")
    ...     make_policy("moldable").is_moldable
    True
    """
    warnings.warn(
        "make_policy() is deprecated; use "
        "repro.scheduling.registry.resolve(name, **overrides)",
        DeprecationWarning,
        stacklevel=2,
    )
    return REGISTRY.resolve(
        name,
        rescale_gap=rescale_gap,
        launcher_slots=launcher_slots,
        shrink_filter=shrink_filter,
    )
