"""The power-capped capacity scenario.

HPC sites increasingly schedule under a facility power cap, not just a
node count; on the cloud the analogue is a spend/watt budget tighter
than the provisioned slots.  This module models it through the
:class:`~repro.scheduling.policy.CapacityConstraint` hook stage: total
capacity is a **watt budget**, every worker replica draws its size
class's nominal wattage (``JobSizeClass.watts_per_replica``; a
``watts_per_replica`` entry in ``JobRequest.params`` overrides), and the
engine's elastic shrink/expand machinery becomes the *power-capping
actuator* — a high-priority arrival shrinks running jobs until both the
slot and the watt deficits are covered, exactly the Figure-2 walk with a
dual budget.

The constraint composes with the base engine only (not the preemptive
extension, whose checkpoint transitions bypass the charge points).
"""

from __future__ import annotations

from typing import Dict, Optional

from .job import JobRequest
from .policies import DEFAULT_RESCALE_GAP
from .policy import PolicyConfig
from .registry import REGISTRY

__all__ = ["PowerBudget", "DEFAULT_BUDGET_WATTS", "DEFAULT_WATTS_PER_REPLICA"]

#: Default cap: admits an xlarge at its minimum (16 × 250 W = 4 kW) with
#: room for a mixed backlog around it — chosen for the §4.3.1 workload
#: mix on the default 128-slot simulator cluster.
DEFAULT_BUDGET_WATTS = 12_000.0

#: Draw assumed for requests carrying no size class and no override.
DEFAULT_WATTS_PER_REPLICA = 150.0

#: Floating-point slack for budget arithmetic.  The shipped per-class
#: wattages are exactly representable, so accumulation is drift-free;
#: the epsilon only matters for user-supplied fractional watts.
_EPSILON = 1e-9


class PowerBudget:
    """A watt budget implementing the :class:`CapacityConstraint` protocol.

    One instance per engine (the registered policy passes a factory);
    ``used`` tracks the live draw, maintained by the engine's charge
    calls on every replica transition.
    """

    def __init__(
        self,
        budget_watts: float = DEFAULT_BUDGET_WATTS,
        watts: Optional[Dict[str, float]] = None,
        default_watts: float = DEFAULT_WATTS_PER_REPLICA,
    ):
        if not budget_watts > 0:
            raise ValueError(
                f"budget_watts must be positive, got {budget_watts!r}"
            )
        self.budget_watts = float(budget_watts)
        #: Optional size-class name → W/replica overrides (scenario
        #: sweeps re-weight classes without touching the frozen table).
        self.watts = dict(watts) if watts else {}
        self.default_watts = float(default_watts)
        self.used = 0.0

    # -- CapacityConstraint --------------------------------------------

    def weight(self, request: JobRequest) -> float:
        params = request.params or {}
        override = params.get("watts_per_replica")
        if override is not None:
            return float(override)
        name = params.get("size_class") or request.size_class
        if name:
            if name in self.watts:
                return float(self.watts[name])
            from ..perfmodel.datasets import JOB_SIZE_CLASSES

            cls = JOB_SIZE_CLASSES.get(name)
            if cls is not None:
                return float(cls.watts_per_replica)
        return self.default_watts

    def admit(self, request: JobRequest) -> int:
        w = self.weight(request)
        head = self.budget_watts - self.used
        if w <= 0:
            return request.max_replicas  # weightless draws are uncapped
        if head <= 0:
            return 0
        return int((head + _EPSILON) // w)

    def charge(self, request: JobRequest, delta: int) -> None:
        self.used += self.weight(request) * delta

    def headroom(self) -> float:
        return self.budget_watts - self.used


@REGISTRY.register(
    "power-capped", tags=("scenario", "constraint"),
    description="elastic scheduling under a facility watt budget "
                "(shrink/expand as the power-capping actuator)",
)
def _power_capped(
    rescale_gap: float = DEFAULT_RESCALE_GAP,
    launcher_slots: int = 0,
    shrink_filter=None,
    budget_watts: float = DEFAULT_BUDGET_WATTS,
    watts: Optional[Dict[str, float]] = None,
) -> PolicyConfig:
    return PolicyConfig(
        name="power-capped",
        rescale_gap=rescale_gap,
        launcher_slots=launcher_slots,
        shrink_filter=shrink_filter,
        capacity_constraint=lambda: PowerBudget(
            budget_watts=budget_watts, watts=watts
        ),
    )
