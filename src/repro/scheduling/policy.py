"""Decision types and policy configuration.

The policy engine consumes job events and emits :class:`Decision` objects;
the substrate (scheduler simulator or Kubernetes operator) applies them.
Keeping decisions explicit makes the Figure-2/3 algorithm testable without
any cluster.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, runtime_checkable

from .job import JobRequest, SchedulerJob

__all__ = [
    "Decision",
    "StartJob",
    "ShrinkJob",
    "ExpandJob",
    "EnqueueJob",
    "RequeueJob",
    "PolicyConfig",
    "SchedulingPolicy",
    "BackfillRule",
    "CapacityConstraint",
]


@dataclass(frozen=True)
class Decision:
    """Base class for scheduling decisions."""

    job: SchedulerJob


@dataclass(frozen=True)
class StartJob(Decision):
    """Launch ``job`` with ``replicas`` workers (createOrExpandJob on a new
    or queued job)."""

    replicas: int


@dataclass(frozen=True)
class ShrinkJob(Decision):
    """Scale a running job down (shrinkJob in Figure 2)."""

    from_replicas: int
    to_replicas: int


@dataclass(frozen=True)
class ExpandJob(Decision):
    """Scale a running job up (createOrExpandJob in Figure 3)."""

    from_replicas: int
    to_replicas: int


@dataclass(frozen=True)
class EnqueueJob(Decision):
    """Hold ``job`` in the internal priority queue."""


@dataclass(frozen=True)
class RequeueJob(Decision):
    """Evict a running job back to the queue because its capacity vanished.

    Emitted only by forced capacity shrinks (a spot-instance interruption
    reclaiming a node out from under the scheduler, §2's cloud reality) —
    never by the Figure-2/3 policy logic itself.  Unlike
    :class:`~repro.scheduling.extensions.PreemptJob` the eviction is not a
    scheduling choice and carries no checkpoint: the substrate decides
    what survives (the schedsim model restarts the job from scratch).
    """

    released_replicas: int


@runtime_checkable
class BackfillRule(Protocol):
    """Backfill-eligibility stage: may this out-of-order start happen?

    Consulted by the engine whenever a job would start while older queued
    work is still waiting (an arrival starting past a non-empty queue, or
    a Figure-3 redistribution reaching a job behind a blocked one).  EASY
    backfilling lives here: ``allows`` returns ``False`` when the start
    would push back the reserved queue head.
    """

    def allows(self, engine, job: SchedulerJob, replicas: int,
               now: float) -> bool:
        """True if ``job`` may start with ``replicas`` workers at ``now``."""
        ...


@runtime_checkable
class CapacityConstraint(Protocol):
    """Capacity-constraint stage: a budget tighter than the slot count.

    The engine keeps its slot accounting, but additionally charges every
    replica-count transition against this constraint and caps starts and
    expansions by :meth:`admit`.  The power-capped scenario implements it
    as a watt budget with per-size-class weights; elastic shrink/expand
    becomes the power-capping actuator.
    """

    def weight(self, request: JobRequest) -> float:
        """Budget units consumed per replica of ``request``."""
        ...

    def admit(self, request: JobRequest) -> int:
        """How many replicas of ``request`` fit in the remaining budget."""
        ...

    def charge(self, request: JobRequest, delta: int) -> None:
        """Record a replica-count change of ``delta`` for ``request``."""
        ...

    def headroom(self) -> float:
        """Remaining budget units."""
        ...


@runtime_checkable
class SchedulingPolicy(Protocol):
    """The policy surface :class:`~repro.scheduling.elastic.ElasticPolicyEngine`
    consumes.

    :class:`PolicyConfig` is the canonical implementation; anything with
    these attributes (e.g. a third-party config registered through
    :mod:`repro.scheduling.registry`) drives the engine equally.  The
    three hook stages generalize the paper's fixed algorithm:

    ``priority_rule``
        queue-ordering stage — rewrites a submission's effective priority
        (EWT/PRB priority rules).
    ``backfill``
        backfill-eligibility stage — gates out-of-order starts (EASY).
    ``capacity_constraint``
        capacity-constraint stage — factory for a per-engine budget
        tighter than the slot count (power capping).
    """

    name: str
    rescale_gap: float
    launcher_slots: int
    job_transform: Callable[[JobRequest], JobRequest]
    shrink_filter: Optional[Callable[[SchedulerJob, int], bool]]
    literal_completion_budget: bool
    priority_rule: Optional[Callable[[JobRequest], float]]
    backfill: Optional[BackfillRule]
    capacity_constraint: Optional[Callable[[], CapacityConstraint]]


@dataclass
class PolicyConfig:
    """Tunable parameters of the elastic policy (§3.2.1).

    Parameters
    ----------
    rescale_gap:
        :math:`T_{rescale\\_gap}` — the minimum gap between any two
        scheduling events (creation, shrink, expand) for one job.
        ``math.inf`` turns the elastic policy into the moldable policy
        (§4.3.2: "emulated by setting a large T_rescale_gap").
    launcher_slots:
        Slots consumed by a job's launcher pod in addition to its workers.
        The paper's Figure-2 pseudocode reserves one slot
        (``freeSlots - 1``); its simulator models none ("we do not consider
        the overhead added by the operator"), so the default here is 0 and
        the Kubernetes path uses 1.
    job_transform:
        Applied to every submission before scheduling; the rigid baselines
        pin ``min == max`` here, exactly how the paper emulates them.
    shrink_filter:
        Failure-injection hook: return ``False`` to make a shrink attempt
        fail (the pseudocode's ``if shrinkJob(...)`` guard).
    literal_completion_budget:
        Figure 3 taken literally redistributes only the workers freed by
        *this* completion; slots left over from earlier events are never
        re-offered to the queue, which can strand a queued job forever
        (its minimum larger than any single completion).  The default
        (``False``) uses the accumulated free slots as the budget —
        deadlock-free and faithful to the stated intent ("the freed CPUs
        are reassigned ... to start new jobs").  Set ``True`` to study the
        literal pseudocode (see the ablation bench).
    priority_rule:
        Queue-ordering stage: maps a submission to its *effective*
        priority (any real number; bigger schedules sooner).  Applied
        after ``job_transform``; ``None`` keeps the user-supplied
        priority.  Expressed as a priority rewrite rather than a
        comparator so the engine's priority-keyed indexes stay valid.
    backfill:
        Backfill-eligibility stage (:class:`BackfillRule`): gates any
        start that would jump ahead of older queued work.  ``None``
        keeps the paper's behaviour (head-of-queue starts only via the
        shrink walk; Figure 3 stops at the first blocked job's priority).
    capacity_constraint:
        Capacity-constraint stage: a zero-argument factory producing one
        fresh :class:`CapacityConstraint` per engine (engines must not
        share budget state).  ``None`` means slots are the only budget.
    """

    name: str = "elastic"
    rescale_gap: float = 180.0
    launcher_slots: int = 0
    job_transform: Callable[[JobRequest], JobRequest] = field(
        default=lambda request: request
    )
    shrink_filter: Optional[Callable[[SchedulerJob, int], bool]] = None
    literal_completion_budget: bool = False
    priority_rule: Optional[Callable[[JobRequest], float]] = None
    backfill: Optional[BackfillRule] = None
    capacity_constraint: Optional[Callable[[], CapacityConstraint]] = None

    def __post_init__(self):
        # Catch bad parameters at construction with a message naming the
        # field, instead of latent misbehavior (a NaN gap silently failing
        # every rescale-eligibility comparison, a float launcher slot
        # corrupting the O(1) slot accounting) deep inside the engine.
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(
                f"policy name must be a non-empty string, got {self.name!r}"
            )

        def fail(message: str):
            # Registry-built configs surface which policy misfired, not
            # just which field: "policy 'easy-backfill': rescale_gap ...".
            raise ValueError(f"policy {self.name!r}: {message}")

        if isinstance(self.rescale_gap, bool) or not isinstance(
            self.rescale_gap, (int, float)
        ):
            fail(f"rescale_gap must be a number, got {self.rescale_gap!r}")
        if math.isnan(self.rescale_gap):
            fail("rescale_gap must not be NaN")
        if self.rescale_gap < 0:
            fail(f"rescale_gap must be non-negative, got {self.rescale_gap!r}")
        if isinstance(self.launcher_slots, bool) or not isinstance(
            self.launcher_slots, int
        ):
            fail(
                f"launcher_slots must be an integer, got {self.launcher_slots!r}"
            )
        if self.launcher_slots < 0:
            fail(
                f"launcher_slots must be non-negative, "
                f"got {self.launcher_slots!r}"
            )
        if not callable(self.job_transform):
            fail("job_transform must be callable")
        if self.shrink_filter is not None and not callable(self.shrink_filter):
            fail("shrink_filter must be callable or None")
        if self.priority_rule is not None and not callable(self.priority_rule):
            fail("priority_rule must be callable or None")
        if self.backfill is not None and not callable(
            getattr(self.backfill, "allows", None)
        ):
            fail("backfill must provide an allows() method or be None")
        if self.capacity_constraint is not None and not callable(
            self.capacity_constraint
        ):
            fail("capacity_constraint must be a zero-argument factory or None")

    @property
    def is_moldable(self) -> bool:
        return math.isinf(self.rescale_gap)
