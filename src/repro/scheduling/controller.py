"""The elastic scheduler as a Kubernetes controller (§3.2: "integrated
into the operator").

Bridges the pure :class:`ElasticPolicyEngine` onto the cluster: CharmJob
submissions are scheduled on arrival, completions redistribute freed slots,
and decisions are applied by patching job specs — which the MPI operator's
reconcile loop then turns into pod creations and CCS-driven rescales.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..k8s import KubeCluster
from ..mpioperator import CharmJob, CharmJobController, JobPhase
from .elastic import ElasticPolicyEngine
from .job import JobRequest, JobState
from .metrics import JobOutcome, ReplicaTimeline, SchedulerMetrics, compute_metrics
from .policy import (
    Decision,
    EnqueueJob,
    ExpandJob,
    PolicyConfig,
    ShrinkJob,
    StartJob,
)

__all__ = ["ElasticSchedulerController"]


class ElasticSchedulerController:
    """Schedules CharmJobs on a cluster with the Figure-2/3 policy."""

    def __init__(
        self,
        engine,
        cluster: KubeCluster,
        operator: CharmJobController,
        config: Optional[PolicyConfig] = None,
        total_slots: Optional[int] = None,
        tracer=None,
    ):
        self.engine = engine
        self.cluster = cluster
        self.operator = operator
        self.tracer = tracer
        slots = int(cluster.total_cpus) if total_slots is None else int(total_slots)
        self.policy = ElasticPolicyEngine(slots, config or PolicyConfig())
        self.total_slots = slots
        self._charm_jobs: Dict[str, CharmJob] = {}
        self._timelines: Dict[str, ReplicaTimeline] = {}
        self._observed_replicas: Dict[str, int] = {}
        self._completed: set = set()
        self.outcomes: List[JobOutcome] = []
        self._watch = cluster.api.watch(self._on_event, kind="CharmJob", namespace=None)

    # ------------------------------------------------------------------
    # Submission path
    # ------------------------------------------------------------------

    def submit(self, job: CharmJob) -> CharmJob:
        """Submit a job *through the scheduler* (suspended until placed)."""
        job.spec.suspend = True
        job.spec.replicas = None
        return self.operator.submit(job)

    # ------------------------------------------------------------------
    # Watch plumbing
    # ------------------------------------------------------------------

    def _on_event(self, event) -> None:
        job: CharmJob = event.object
        name = job.name
        if name not in self._charm_jobs and not job.is_finished:
            self._charm_jobs[name] = job
            self._timelines[name] = ReplicaTimeline()
            self._observed_replicas[name] = 0
            request = JobRequest(
                name=name,
                min_replicas=job.spec.min_replicas,
                max_replicas=job.spec.max_replicas,
                priority=job.spec.priority,
                size_class=job.spec.app.params.get("size_class"),
                params=dict(job.spec.app.params),
            )
            decisions = self.policy.on_submit(request, self.engine.now)
            self._apply(decisions)
            return
        if name not in self._charm_jobs:
            return
        # Track observed replica changes for the utilization timeline.
        observed = job.status.replicas if not job.is_finished else 0
        if observed != self._observed_replicas[name]:
            self._observed_replicas[name] = observed
            self._timelines[name].record(self.engine.now, observed)
        # Completion: run Figure 3 once.
        if job.status.phase == JobPhase.COMPLETED and name not in self._completed:
            self._completed.add(name)
            self._timelines[name].record(self.engine.now, 0)
            decisions = self.policy.on_complete(name, self.engine.now)
            self._record_outcome(job)
            self._apply(decisions)
            return
        if job.status.phase == JobPhase.FAILED and name not in self._completed:
            self._completed.add(name)
            self._timelines[name].record(self.engine.now, 0)
            self.policy.on_complete(name, self.engine.now)
            return
        # Failed-rescale reconciliation: the operator reverted the spec.
        self._maybe_resync(job)

    def _maybe_resync(self, job: CharmJob) -> None:
        name = job.name
        if name in self._completed or job.status.rescale_in_progress:
            return
        try:
            record = self.policy.job(name)
        except Exception:  # noqa: BLE001 - job unknown to the policy yet
            return
        if record.state != JobState.RUNNING:
            return
        spec_replicas = job.spec.replicas
        if (
            spec_replicas is not None
            and job.status.message
            and record.replicas != spec_replicas
        ):
            self.policy.on_rescale_failed(name, spec_replicas)
            if self.tracer is not None:
                self.tracer.emit(
                    "scheduler.resync", name, replicas=spec_replicas,
                    reason=job.status.message,
                )

    # ------------------------------------------------------------------
    # Decision application
    # ------------------------------------------------------------------

    def _apply(self, decisions: List[Decision]) -> None:
        for decision in decisions:
            job = self._charm_jobs[decision.job.name]
            if isinstance(decision, StartJob):
                self._patch_start(job, decision.replicas)
            elif isinstance(decision, (ShrinkJob, ExpandJob)):
                self._patch_replicas(job, decision.to_replicas)
            elif isinstance(decision, EnqueueJob):
                if self.tracer is not None:
                    self.tracer.emit("scheduler.enqueue", job.name)
            else:  # pragma: no cover - future decision kinds
                raise TypeError(f"unknown decision {decision!r}")

    def _patch_start(self, job: CharmJob, replicas: int) -> None:
        now = self.engine.now

        def mutate(j: CharmJob) -> None:
            j.spec.suspend = False
            j.spec.replicas = replicas
            j.status.last_action_time = now

        self.cluster.api.patch(job, mutate)
        if self.tracer is not None:
            self.tracer.emit("scheduler.start", job.name, replicas=replicas)

    def _patch_replicas(self, job: CharmJob, replicas: int) -> None:
        now = self.engine.now

        def mutate(j: CharmJob) -> None:
            j.spec.replicas = replicas
            j.status.last_action_time = now

        self.cluster.api.patch(job, mutate)
        if self.tracer is not None:
            self.tracer.emit("scheduler.rescale", job.name, replicas=replicas)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def _record_outcome(self, job: CharmJob) -> None:
        status = job.status
        outcome = JobOutcome(
            name=job.name,
            priority=job.spec.priority,
            submit_time=status.submit_time,
            start_time=status.start_time if status.start_time is not None else status.submit_time,
            completion_time=status.completion_time,
            timeline=self._timelines[job.name],
            size_class=job.spec.app.params.get("size_class"),
            rescale_count=status.rescale_count,
        )
        self.outcomes.append(outcome)

    @property
    def all_done(self) -> bool:
        return len(self._completed) == len(self._charm_jobs) and self._charm_jobs

    def metrics(self, policy_name: Optional[str] = None) -> SchedulerMetrics:
        """Aggregate finished jobs into the paper's four metrics."""
        return compute_metrics(
            policy_name or self.policy.config.name,
            self.outcomes,
            total_slots=self.total_slots,
        )

    def stop(self) -> None:
        self._watch.stop()
