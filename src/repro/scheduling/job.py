"""Job descriptors used by the scheduling policy engine.

The policy engine is substrate-independent: the scheduler simulator
(§4.3.1) and the Kubernetes operator path (§4.3.2) both feed it
:class:`JobRequest` objects and keep :class:`SchedulerJob` records in sync
with reality.
"""

from __future__ import annotations

import enum
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..errors import JobStateError

__all__ = ["JobRequest", "SchedulerJob", "JobState", "priority_order_key"]

_seq = itertools.count(1)


@dataclass(frozen=True, slots=True)
class JobRequest:
    """An immutable job submission.

    Attributes
    ----------
    priority:
        User-defined priority; **larger is more important**.  Two jobs with
        the same priority are ordered by submission time (earlier wins).
    size_class:
        Optional workload label ("small"/"medium"/"large"/"xlarge",
        §4.3.1); carried for the simulators and reports.
    params:
        Application parameters (problem size, timesteps, ...).
    """

    name: str
    min_replicas: int
    max_replicas: int
    priority: int = 1
    size_class: Optional[str] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.min_replicas < 1:
            raise JobStateError(f"{self.name}: min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise JobStateError(
                f"{self.name}: max_replicas ({self.max_replicas}) < "
                f"min_replicas ({self.min_replicas})"
            )

    def with_rigid_replicas(self, replicas: int) -> "JobRequest":
        """A copy pinned to a fixed size (the paper's rigid emulation)."""
        return JobRequest(
            name=self.name,
            min_replicas=replicas,
            max_replicas=replicas,
            priority=self.priority,
            size_class=self.size_class,
            params=dict(self.params),
        )


class JobState(str, enum.Enum):
    QUEUED = "Queued"
    RUNNING = "Running"
    COMPLETED = "Completed"


@dataclass(slots=True)
class SchedulerJob:
    """The policy engine's live record for one job."""

    request: JobRequest
    submit_time: float = 0.0
    seq: int = field(default_factory=_seq.__next__)
    #: Cached :func:`priority_order_key` — every component is fixed at
    #: construction (user priority, submission time, sequence), and the
    #: sorted containers ask for the key often enough that rebuilding the
    #: tuple showed up in trace-scale profiles.
    sort_key: tuple = field(init=False, repr=False, compare=False, default=())
    state: JobState = JobState.QUEUED
    replicas: int = 0
    #: Time of the last scheduling event (create/shrink/expand); -inf means
    #: the T_rescale_gap check always passes (queued jobs, §3.2.1).
    last_action: float = -math.inf
    start_time: Optional[float] = None
    completion_time: Optional[float] = None
    rescale_count: int = 0

    # Short accessors mirroring the pseudocode's field names ----------------

    @property
    def name(self) -> str:
        return self.request.name

    @property
    def priority(self) -> int:
        return self.request.priority

    @property
    def min_replicas(self) -> int:
        return self.request.min_replicas

    @property
    def max_replicas(self) -> int:
        return self.request.max_replicas

    @property
    def is_running(self) -> bool:
        return self.state == JobState.RUNNING

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SchedulerJob {self.name} p{self.priority} "
            f"{self.state.value} r={self.replicas}>"
        )


def priority_order_key(job: SchedulerJob):
    """Sort key for *decreasing* effective priority.

    Higher user priority first; among equals, earlier submission first
    (§3.2.1), with the submission sequence as the final deterministic
    tie-break.  The tuple is immutable per job and cached on it.
    """
    return job.sort_key or _build_sort_key(job)


def _build_sort_key(job: SchedulerJob) -> tuple:
    key = (-job.request.priority, job.submit_time, job.seq)
    job.sort_key = key
    return key
