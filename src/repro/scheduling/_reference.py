"""Frozen pre-optimization reference of the Figure-2/3 policy engine.

:mod:`repro.scheduling.elastic` was reworked for per-event speed
(incremental slot accounting, permanently sorted job lists, a lazy merge
for the Figure-3 walk).  This module preserves the original direct
transliteration of the paper's pseudocode **verbatim** so the optimized
engine can be proven equivalent:

* ``tests/scheduling/test_decision_log_equivalence.py`` drives randomized
  workloads through both implementations and asserts byte-identical
  decision sequences;
* ``benchmarks/bench_policy_engine.py`` and ``repro bench`` run both on
  the same synthetic workload to report the events/sec speedup.

Do **not** optimize this module; its entire value is staying slow and
obviously faithful to the paper.  Behavioural fixes that change decision
sequences must be applied to both implementations in lockstep (and the
equivalence test will insist on it).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import CapacityError, JobStateError
from .job import JobRequest, JobState, SchedulerJob, priority_order_key
from .policy import (
    Decision,
    EnqueueJob,
    ExpandJob,
    PolicyConfig,
    ShrinkJob,
    StartJob,
)

__all__ = [
    "ReferenceElasticPolicyEngine",
    "ReferenceAgingPolicyEngine",
    "ReferencePreemptivePolicyEngine",
]


class ReferenceElasticPolicyEngine:
    """The original O(n)-per-event Figure-2/3 engine (pre-PR-2)."""

    def __init__(self, total_slots: int, config: Optional[PolicyConfig] = None):
        if total_slots < 1:
            raise CapacityError("total_slots must be positive")
        self.total_slots = int(total_slots)
        self.config = config or PolicyConfig()
        self.running: List[SchedulerJob] = []  # decreasing priority order
        self.queue: List[SchedulerJob] = []  # decreasing priority order
        self._jobs: Dict[str, SchedulerJob] = {}
        self.decision_log: List[Decision] = []

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def free_slots(self) -> int:
        """Slots not held by running jobs (workers + launcher reservations)."""
        used = sum(j.replicas + self.config.launcher_slots for j in self.running)
        free = self.total_slots - used
        if free < 0:
            raise CapacityError(
                f"scheduler over-committed: {used}/{self.total_slots} slots"
            )
        return free

    def job(self, name: str) -> SchedulerJob:
        try:
            return self._jobs[name]
        except KeyError:
            raise JobStateError(f"unknown job {name!r}") from None

    def jobs_by_priority(self) -> List[SchedulerJob]:
        """Running and queued jobs in decreasing priority (Fig 3's allJobs)."""
        return sorted(self.running + self.queue, key=priority_order_key)

    # ------------------------------------------------------------------
    # Event: new job submitted (Figure 2)
    # ------------------------------------------------------------------

    def on_submit(self, request: JobRequest, now: float) -> List[Decision]:
        request = self.config.job_transform(request)
        if request.name in self._jobs:
            raise JobStateError(f"job {request.name!r} already submitted")
        job = SchedulerJob(request=request, submit_time=now)
        self._jobs[job.name] = job
        reserve = self.config.launcher_slots
        gap = self.config.rescale_gap
        decisions: List[Decision] = []

        # replicas = min(freeSlots - 1, job.maxReplicas)
        replicas = min(self.free_slots - reserve, job.max_replicas)
        if replicas >= job.min_replicas:
            decisions.append(self._start(job, replicas, now))
            return self._log(decisions)

        # Dry run: would shrinking lower-priority jobs free enough slots to
        # reach the new job's minimum?
        num_to_free = job.min_replicas - (self.free_slots - reserve)
        index = len(self.running) - 1
        while num_to_free > 0 and index > 0:
            candidate = self.running[index]
            index -= 1
            if now - candidate.last_action < gap:
                continue
            if candidate.priority > job.priority:
                break
            if candidate.replicas > candidate.min_replicas:
                new_replicas = max(
                    candidate.min_replicas, candidate.replicas - num_to_free
                )
                num_to_free -= candidate.replicas - new_replicas
        if num_to_free > 0:
            decisions.append(self._enqueue(job))
            return self._log(decisions)

        # Real pass: shrink towards freeing up to maxReplicas' worth.
        min_to_free = job.min_replicas - (self.free_slots - reserve)
        max_to_free = job.max_replicas - (self.free_slots - reserve)
        index = len(self.running) - 1
        while max_to_free > 0 and index > 0:
            candidate = self.running[index]
            index -= 1
            if now - candidate.last_action < gap:
                continue
            if candidate.priority > job.priority:
                break
            if candidate.replicas > candidate.min_replicas:
                new_replicas = max(
                    candidate.min_replicas, candidate.replicas - max_to_free
                )
                old_replicas = candidate.replicas
                shrink = self._shrink(candidate, new_replicas, now)
                if shrink is not None:
                    decisions.append(shrink)
                    freed = old_replicas - new_replicas
                    min_to_free -= freed
                    max_to_free -= freed
        if min_to_free > 0:
            decisions.append(self._enqueue(job))
            return self._log(decisions)

        replicas = min(self.free_slots - reserve, job.max_replicas)
        decisions.append(self._start(job, replicas, now))
        return self._log(decisions)

    # ------------------------------------------------------------------
    # Event: job finished (Figure 3)
    # ------------------------------------------------------------------

    def on_complete(self, name: str, now: float) -> List[Decision]:
        job = self.job(name)
        if job.state != JobState.RUNNING:
            raise JobStateError(f"job {name!r} is {job.state.value}, not Running")
        # freeWorkers(job): release the job's pods.
        job.state = JobState.COMPLETED
        job.completion_time = now
        self.running.remove(job)
        freed = job.replicas + self.config.launcher_slots
        job.replicas = 0
        if self.config.literal_completion_budget:
            # Figure 3 verbatim: redistribute only this job's workers.
            num_workers = freed
        else:
            # Deadlock-free default: the budget is everything now free
            # (this completion plus leftovers from earlier events).
            num_workers = self.free_slots

        reserve = self.config.launcher_slots
        gap = self.config.rescale_gap
        decisions: List[Decision] = []
        for candidate in self.jobs_by_priority():
            if num_workers <= 0:
                break
            if now - candidate.last_action < gap:
                continue
            if candidate.replicas < candidate.max_replicas:
                add = min(num_workers, candidate.max_replicas - candidate.replicas)
                if candidate.state == JobState.QUEUED:
                    # Starting a queued job also needs its launcher slot.
                    add = min(num_workers - reserve, candidate.max_replicas)
                    if add >= candidate.min_replicas:
                        decisions.append(self._start_queued(candidate, add, now))
                        num_workers -= add + reserve
                elif candidate.replicas + add >= candidate.min_replicas:
                    decisions.append(self._expand(candidate, candidate.replicas + add, now))
                    num_workers -= add
        # Remaining freed workers return to the free pool implicitly.
        return self._log(decisions)

    # ------------------------------------------------------------------
    # Substrate feedback
    # ------------------------------------------------------------------

    def on_rescale_failed(self, name: str, actual_replicas: int) -> None:
        job = self.job(name)
        if job.state != JobState.RUNNING:
            raise JobStateError(f"job {name!r} is not running")
        job.replicas = int(actual_replicas)
        if self.free_slots < 0:  # pragma: no cover - defensive
            raise CapacityError("rescale failure reconciliation over-committed")

    # ------------------------------------------------------------------
    # Internal transitions (each updates lastAction, per §3.2.1)
    # ------------------------------------------------------------------

    def _start(self, job: SchedulerJob, replicas: int, now: float) -> StartJob:
        self._validate_capacity(replicas + self.config.launcher_slots)
        job.state = JobState.RUNNING
        job.replicas = replicas
        job.last_action = now
        job.start_time = now
        self.running.append(job)
        self.running.sort(key=priority_order_key)
        return StartJob(job=job, replicas=replicas)

    def _start_queued(self, job: SchedulerJob, replicas: int, now: float) -> StartJob:
        self.queue.remove(job)
        return self._start(job, replicas, now)

    def _enqueue(self, job: SchedulerJob) -> EnqueueJob:
        # NOTE: lastAction deliberately untouched (see repro.scheduling.elastic).
        job.state = JobState.QUEUED
        self.queue.append(job)
        self.queue.sort(key=priority_order_key)
        return EnqueueJob(job=job)

    def _shrink(self, job: SchedulerJob, new_replicas: int, now: float) -> Optional[ShrinkJob]:
        if self.config.shrink_filter is not None and not self.config.shrink_filter(
            job, new_replicas
        ):
            return None
        old = job.replicas
        job.replicas = new_replicas
        job.last_action = now
        job.rescale_count += 1
        return ShrinkJob(job=job, from_replicas=old, to_replicas=new_replicas)

    def _expand(self, job: SchedulerJob, new_replicas: int, now: float) -> ExpandJob:
        self._validate_capacity(new_replicas - job.replicas)
        old = job.replicas
        job.replicas = new_replicas
        job.last_action = now
        job.rescale_count += 1
        return ExpandJob(job=job, from_replicas=old, to_replicas=new_replicas)

    def _validate_capacity(self, extra_slots: int) -> None:
        if extra_slots > self.free_slots:
            raise CapacityError(
                f"decision needs {extra_slots} slots but only "
                f"{self.free_slots} are free"
            )

    def _log(self, decisions: List[Decision]) -> List[Decision]:
        self.decision_log.extend(decisions)
        return decisions

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Tuple[str, int]]:
        """(state, replicas) per job — used by invariant tests."""
        return {
            name: (job.state.value, job.replicas) for name, job in self._jobs.items()
        }


class ReferenceAgingPolicyEngine(ReferenceElasticPolicyEngine):
    """Pre-PR-2 copy of :class:`repro.scheduling.AgingPolicyEngine`."""

    def __init__(
        self,
        total_slots: int,
        config: Optional[PolicyConfig] = None,
        aging_interval: float = 600.0,
        max_priority: int = 10,
    ):
        super().__init__(total_slots, config)
        if aging_interval <= 0:
            raise ValueError("aging_interval must be positive")
        self.aging_interval = float(aging_interval)
        self.max_priority = int(max_priority)

    def effective_priority(self, job: SchedulerJob, now: float) -> int:
        if job.state != JobState.QUEUED:
            return job.priority
        waited = max(0.0, now - job.submit_time)
        boost = int(waited // self.aging_interval)
        return min(self.max_priority, job.priority + boost)

    def jobs_by_priority(self, now: Optional[float] = None) -> List[SchedulerJob]:
        if now is None:
            now = self._now_hint
        return sorted(
            self.running + self.queue,
            key=lambda j: (-self.effective_priority(j, now), j.submit_time, j.seq),
        )

    _now_hint: float = 0.0

    def on_submit(self, request, now: float):
        self._now_hint = now
        return super().on_submit(request, now)

    def on_complete(self, name: str, now: float):
        self._now_hint = now
        return super().on_complete(name, now)


class ReferencePreemptivePolicyEngine(ReferenceElasticPolicyEngine):
    """Pre-PR-2 copy of :class:`repro.scheduling.PreemptivePolicyEngine`."""

    def __init__(self, total_slots: int, config: Optional[PolicyConfig] = None):
        super().__init__(total_slots, config)
        self.preempted: set = set()

    def on_submit(self, request, now: float):
        decisions = super().on_submit(request, now)
        if not decisions or not isinstance(decisions[-1], EnqueueJob):
            return decisions
        job = decisions[-1].job
        preemptions = self._try_preempt(job, now)
        if not preemptions:
            return decisions
        # The arrival now fits: pull it back out of the queue and start it.
        self.queue.remove(job)
        replicas = min(
            self.free_slots - self.config.launcher_slots, job.max_replicas
        )
        start = self._start(job, replicas, now)
        return self._log(decisions[:-1] + preemptions + [start])

    def _try_preempt(self, job: SchedulerJob, now: float) -> List[Decision]:
        from .extensions import PreemptJob

        reserve = self.config.launcher_slots
        needed = job.min_replicas - (self.free_slots - reserve)
        victims: List[SchedulerJob] = []
        freed = 0
        for candidate in reversed(self.running[1:]):  # index-0 protected
            if freed >= needed:
                break
            if candidate.priority >= job.priority:
                break
            victims.append(candidate)
            freed += candidate.replicas + reserve
        if freed < needed:
            return []
        decisions: List[Decision] = []
        for victim in victims:
            self.running.remove(victim)
            released = victim.replicas
            victim.replicas = 0
            victim.state = JobState.QUEUED
            victim.last_action = now
            self.preempted.add(victim.name)
            self.queue.append(victim)
            decisions.append(PreemptJob(job=victim, released_replicas=released))
        self.queue.sort(key=lambda j: (-j.priority, j.submit_time, j.seq))
        return decisions

    def _start_queued(self, job: SchedulerJob, replicas: int, now: float):
        from .extensions import ResumeJob

        start = super()._start_queued(job, replicas, now)
        if job.name in self.preempted:
            self.preempted.discard(job.name)
            return ResumeJob(job=job, replicas=replicas)
        return start
