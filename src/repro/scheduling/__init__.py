"""★ The paper's contribution: priority-based elastic job scheduling (§3.2).

Public surface::

    from repro.scheduling import (
        ElasticPolicyEngine, PolicyConfig, SchedulingPolicy,
        SchedulerRegistry, REGISTRY, resolve, list_policies,
        make_policy, POLICY_NAMES,
        JobRequest, SchedulerJob, JobState,
        Decision, StartJob, ShrinkJob, ExpandJob, EnqueueJob,
        JobOutcome, ReplicaTimeline, SchedulerMetrics, compute_metrics,
        ElasticSchedulerController,
    )

Policies resolve by name through :mod:`repro.scheduling.registry`;
importing this package registers the paper's four policies
(:mod:`.policies`), the literature schedulers (:mod:`.literature`:
``ewt``, ``prb``, ``easy-backfill``), and the power-capped scenario
(:mod:`.power`).
"""

from .elastic import ElasticPolicyEngine
from .job import JobRequest, JobState, SchedulerJob, priority_order_key
from .metrics import (
    JobOutcome,
    MetricsAccumulator,
    ReplicaTimeline,
    SchedulerMetrics,
    StreamingTimeline,
    compute_metrics,
)
from .metrics import FairnessReport, compute_fairness
from .registry import (
    REGISTRY,
    PolicyRegistrationError,
    PolicySpec,
    SchedulerRegistry,
    UnknownPolicyError,
    describe,
    list_policies,
    resolve,
)
from .policies import DEFAULT_RESCALE_GAP, POLICY_NAMES, make_policy
from . import literature  # noqa: F401  (self-registering policies)
from . import power  # noqa: F401  (self-registering policies)
from .policy import (
    BackfillRule,
    CapacityConstraint,
    Decision,
    EnqueueJob,
    ExpandJob,
    PolicyConfig,
    RequeueJob,
    SchedulingPolicy,
    ShrinkJob,
    StartJob,
)

__all__ = [
    "ElasticPolicyEngine",
    "PolicyConfig",
    "SchedulingPolicy",
    "BackfillRule",
    "CapacityConstraint",
    "SchedulerRegistry",
    "PolicySpec",
    "REGISTRY",
    "UnknownPolicyError",
    "PolicyRegistrationError",
    "resolve",
    "list_policies",
    "describe",
    "make_policy",
    "POLICY_NAMES",
    "DEFAULT_RESCALE_GAP",
    "JobRequest",
    "SchedulerJob",
    "JobState",
    "priority_order_key",
    "Decision",
    "StartJob",
    "ShrinkJob",
    "ExpandJob",
    "EnqueueJob",
    "RequeueJob",
    "JobOutcome",
    "ReplicaTimeline",
    "StreamingTimeline",
    "SchedulerMetrics",
    "compute_metrics",
    "MetricsAccumulator",
    "FairnessReport",
    "compute_fairness",
]

# The Kubernetes-facing controller pulls in the operator stack; import it
# lazily so pure-policy users (the simulator) stay lightweight.


def __getattr__(name):
    if name == "ElasticSchedulerController":
        from .controller import ElasticSchedulerController

        return ElasticSchedulerController
    if name in ("AgingPolicyEngine", "PreemptivePolicyEngine", "PreemptJob",
                "ResumeJob"):
        from . import extensions

        return getattr(extensions, name)
    raise AttributeError(f"module 'repro.scheduling' has no attribute {name!r}")
