"""The priority-based elastic scheduling policy — Figures 2 and 3.

This is the paper's core contribution (§3.2.1), implemented faithfully
from the pseudocode, including its quirks (documented in DESIGN.md §3):

* the running-job scan uses ``index > 0``, so the single highest-priority
  running job is never considered for shrinking;
* the stop condition is strict ``j.priority > job.priority``: *equal*
  -priority running jobs are eligible shrink victims even though the
  submission-time tie-break ranks them above the newcomer;
* a new submission is scheduled independently of the queue — a low-priority
  job can start in free slots while higher-priority jobs wait (the stated
  out-of-order-allocation feature);
* enqueueing does **not** update ``lastAction`` (otherwise moldable —
  elastic with :math:`T_{rescale\\_gap} = \\infty` — could never start
  queued jobs, contradicting §4.3.2).

Two deviations (both documented in DESIGN.md §3):

* starting a *queued* job consumes ``launcher_slots`` in addition to its
  workers; Figure 3's budget arithmetic omits that launcher slot.  With
  the simulator default ``launcher_slots = 0`` this is exactly the
  pseudocode;
* ``completeJob``'s redistribution budget defaults to *all* currently
  free slots rather than only this completion's freed workers — the
  literal budget can strand a queued job forever (see
  ``PolicyConfig.literal_completion_budget``, which restores the verbatim
  behaviour for ablation).

Per-event complexity (the PR-3 hot-path contract)
-------------------------------------------------

``running`` and ``queue`` are :class:`~repro.scheduling.joblist
.IndexedJobList` instances — blocked sorted lists ordered by
:func:`priority_order_key` whose blocks carry shrink-victim aggregates
(sum of reclaimable slots, a rescale-gap-eligibility time bound, and the
cheapest member's ``min_replicas``).  With ``n`` live (running + queued)
jobs and block size ``B``:

* ``free_slots`` is O(1) — a counter maintained by every transition
  (start/shrink/expand/complete/preempt/rescale-failed), never a re-sum;
* insert/remove cost O(log(n/B) + B) — a block bisect plus a small
  C-level memmove, replacing the flat list's O(n) shift;
* the Figure-2 dry-run is an aggregate query: whole running blocks are
  credited with their ``shrinkable`` sum in O(1) when their time bound
  proves every member rescale-gap-eligible, so feasibility costs
  O(running/B) instead of O(running); the real pass skips blocks with no
  victims and touches only actual victims (plus at most one boundary
  block scanned item-by-item);
* completion walks Figure 3's ``allJobs`` as a two-pointer merge in
  which whole *queue* blocks whose cheapest member cannot start within
  the remaining slot budget are skipped in O(1) — the budget only
  shrinks during a walk, so a skipped block can never become startable
  again.  This removes the O(queue) scan behind the 100k-job throughput
  cliff: a completion whose budget starts nobody costs O(queue/B), not
  O(queue);
* the *running* side of the same merge (PR 5) skips whole blocks with
  no expandable member: ``expandable == 0`` (every member at its
  maximum) or ``now - oldest_action < gap`` (``oldest_action`` is a
  lower bound on the members' ``last_action``, so no member can be
  rescale-gap-eligible).  Skipped runners would have emitted nothing
  and consumed no budget, so the decision sequence is untouched;
* the Figure-2 dry run short-circuits to *infeasible* when the blocks'
  total ``shrinkable`` sum cannot cover the requested slots — priority
  stops and gap ineligibility only ever reduce what the walk frees, so
  the aggregate total is a sound upper bound.

Decision sequences are **byte-identical** to the preserved pre-
optimization engine (:mod:`repro.scheduling._reference`); the golden
decision-log equivalence test
(``tests/scheduling/test_decision_log_equivalence.py``) enforces the
contract across randomized workloads for every policy configuration, so
the documented Figure-2/3 quirks provably survive the refactor.  For
streaming substrates, :meth:`ElasticPolicyEngine.retire` and
:attr:`ElasticPolicyEngine.keep_decision_log` bound the engine's memory
by the live-job count instead of the workload length.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import CapacityError, JobStateError
from ..obs.metrics import active_registry
from .job import JobRequest, JobState, SchedulerJob, priority_order_key
from .joblist import IndexedJobList
from .policy import (
    Decision,
    EnqueueJob,
    ExpandJob,
    PolicyConfig,
    RequeueJob,
    ShrinkJob,
    StartJob,
)

__all__ = ["ElasticPolicyEngine"]


class ElasticPolicyEngine:
    """Pure-logic implementation of the Figure-2/3 scheduling algorithm.

    The engine owns the scheduler's bookkeeping (running list, internal
    priority queue, per-job ``lastAction``) and emits decisions; the
    substrate applies them to reality and reports completions back.
    """

    def __init__(self, total_slots: int, config: Optional[PolicyConfig] = None):
        if total_slots < 1:
            raise CapacityError("total_slots must be positive")
        self.total_slots = int(total_slots)
        self.config = config or PolicyConfig()
        self.running = IndexedJobList()  # decreasing priority order
        self.queue = IndexedJobList()  # decreasing priority order
        self._jobs: Dict[str, SchedulerJob] = {}
        self.decision_log: List[Decision] = []
        #: Streaming substrates set this False so the log stays empty and
        #: memory is bounded by live jobs, not workload length.
        self.keep_decision_log: bool = True
        #: Slots held by running jobs (workers + launcher reservations),
        #: maintained incrementally by every transition.
        self._used_slots: int = 0
        # During the Figure-3 walk, queue→running moves are recorded here
        # and applied after the walk (the walk's block pointers must not
        # see structural mutations mid-flight).
        self._pending_starts: Optional[List[SchedulerJob]] = None
        # The SchedulingPolicy hook stages (all None on the paper's four
        # policies, keeping every hot path bytewise identical).  getattr
        # keeps duck-typed configs without the new fields working.
        config = self.config
        self._priority_rule = getattr(config, "priority_rule", None)
        self._backfill = getattr(config, "backfill", None)
        factory = getattr(config, "capacity_constraint", None)
        #: One fresh constraint per engine: budgets are engine state.
        self._constraint = factory() if factory is not None else None
        #: Span recorder a tracing substrate may attach
        #: (:class:`repro.obs.spans.PhaseSpans`); None = no span timing.
        self.spans = None
        # Telemetry binds at construction: with the registry disabled
        # ``_obs`` is None and the instrumented branches never run —
        # decision sequences are identical either way (the golden
        # decision-log suite runs with a registry attached to prove it).
        registry = active_registry()
        if registry.enabled:
            self._obs = registry
            self._obs_redistributes = registry.counter("engine.redistribute_calls")
            self._obs_shrink_passes = registry.counter("engine.shrink_pass_calls")
            self._obs_queue_skips = registry.counter(
                "engine.fig3.queue_blocks_skipped"
            )
            self._obs_running_skips = registry.counter(
                "engine.fig3.running_blocks_skipped"
            )
        else:
            self._obs = None

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def free_slots(self) -> int:
        """Slots not held by running jobs (workers + launcher reservations)."""
        free = self.total_slots - self._used_slots
        if free < 0:
            raise CapacityError(
                f"scheduler over-committed: {self._used_slots}/"
                f"{self.total_slots} slots"
            )
        return free

    def job(self, name: str) -> SchedulerJob:
        try:
            return self._jobs[name]
        except KeyError:
            raise JobStateError(f"unknown job {name!r}") from None

    def jobs_by_priority(self) -> List[SchedulerJob]:
        """Running and queued jobs in decreasing priority (Fig 3's allJobs)."""
        return list(self._candidates_by_priority())

    def _candidates_by_priority(self) -> Iterator[SchedulerJob]:
        """Lazy merge of the two sorted sequences in decreasing priority.

        Both are permanently sorted by :func:`priority_order_key` with
        unique keys, so the merge reproduces exactly what
        ``sorted(running + queue)`` used to build — without materializing
        it.  Callers must not structurally mutate ``running``/``queue``
        while consuming the iterator.
        """
        return heapq.merge(self.running, self.queue, key=priority_order_key)

    # ------------------------------------------------------------------
    # Event: new job submitted (Figure 2)
    # ------------------------------------------------------------------

    def on_submit(self, request: JobRequest, now: float) -> List[Decision]:
        request = self.config.job_transform(request)
        if self._priority_rule is not None:
            # Queue-ordering stage: the rule rewrites the *effective*
            # priority, so the engine's priority-keyed order and block
            # aggregates stay exact.  Metrics weight by the submission's
            # original priority (the simulator keeps its own request).
            request = dataclasses.replace(
                request, priority=self._priority_rule(request)
            )
        if request.name in self._jobs:
            raise JobStateError(f"job {request.name!r} already submitted")
        job = SchedulerJob(request=request, submit_time=now)
        self._jobs[request.name] = job
        if self._constraint is not None:
            return self._submit_constrained(job, now)
        if self._backfill is not None and len(self.queue):
            return self._submit_backfill(job, now)
        reserve = self.config.launcher_slots
        req_min = request.min_replicas
        req_max = request.max_replicas
        decisions: List[Decision] = []

        # replicas = min(freeSlots - 1, job.maxReplicas)
        avail = self.free_slots - reserve
        replicas = avail if avail < req_max else req_max
        if replicas >= req_min:
            decisions.append(self._start(job, replicas, now))
            return self._log(decisions)

        # Dry run: would shrinking lower-priority jobs free enough slots to
        # reach the new job's minimum?  (An aggregate query over the
        # running blocks — no per-candidate walk on the common path.  The
        # dry run is pure, so ``avail`` is still current afterwards.)
        if not self._shrink_feasible(job, now, req_min - avail):
            decisions.append(self._enqueue(job))
            return self._log(decisions)

        # Real pass: shrink towards freeing up to maxReplicas' worth.
        min_to_free = self._shrink_victims(
            job, now, req_min - avail, req_max - avail, decisions
        )
        if min_to_free > 0:
            decisions.append(self._enqueue(job))
            return self._log(decisions)

        avail = self.free_slots - reserve
        replicas = avail if avail < req_max else req_max
        decisions.append(self._start(job, replicas, now))
        return self._log(decisions)

    # ------------------------------------------------------------------
    # Figure 2's shrink-victim walk, indexed
    # ------------------------------------------------------------------
    #
    # The literal walk visits running jobs from lowest priority upward
    # (positions len-1 .. 1; the index-0 job is protected), skipping
    # candidates inside their T_rescale_gap, and stops at the first
    # *eligible* candidate that outranks the arrival.  Because the list
    # is sorted, that stop is equivalent to "no further victims exist" —
    # which is what lets whole blocks be credited or skipped from their
    # aggregates without changing a single decision.

    def _shrink_feasible(self, job: SchedulerJob, now: float, num_to_free: int) -> bool:
        """Figure 2's dry run: could shrinking free ``num_to_free`` slots?

        Pure query — no state is touched.  Blocks whose time bound proves
        every member rescale-gap-eligible are resolved in O(1): credited
        with their ``shrinkable`` sum when the whole block ranks at or
        below the arrival, or terminating the walk when even their
        lowest-priority member outranks it.  Mixed or possibly-ineligible
        blocks fall back to the literal item scan.
        """
        # Upper-bound early out: the walk can never free more than the
        # list's total shrinkable sum (priority stops and rescale-gap
        # ineligibility only reduce it further), so an arrival needing
        # more is infeasible without visiting a single candidate.
        if self.running.shrinkable_total < num_to_free:
            return False
        gap = self.config.rescale_gap
        priority = job.request.priority
        blocks = self.running.blocks
        for b in range(len(blocks) - 1, -1, -1):
            block = blocks[b]
            jobs = block.jobs
            lo = 1 if b == 0 else 0  # the index-0 job is never a victim
            if lo >= len(jobs):
                continue  # only the protected job in here
            if now - block.newest_action >= gap:
                if jobs[-1].request.priority > priority:
                    # First candidate visited is eligible and outranks the
                    # arrival: the literal walk breaks here.
                    return False
                if jobs[lo].request.priority <= priority:
                    # Every visitable member ranks at or below the arrival:
                    # credit the whole block (minus the protected job's
                    # share in block 0) without touching its members.
                    credit = block.shrinkable
                    if lo:
                        head = jobs[0]
                        extra = head.replicas - head.request.min_replicas
                        if extra > 0:
                            credit -= extra
                    num_to_free -= credit
                    if num_to_free <= 0:
                        return True
                    continue
            for i in range(len(jobs) - 1, lo - 1, -1):
                candidate = jobs[i]
                if now - candidate.last_action < gap:
                    continue
                if candidate.request.priority > priority:
                    return False
                extra = candidate.replicas - candidate.request.min_replicas
                if extra > 0:
                    num_to_free -= extra
                    if num_to_free <= 0:
                        return True
        return num_to_free <= 0

    def _shrink_victims(
        self,
        job: SchedulerJob,
        now: float,
        min_to_free: int,
        max_to_free: int,
        decisions: List[Decision],
    ) -> int:
        """Figure 2's real pass: emit shrinks towards ``max_to_free``.

        Walks the same order as the literal loop but skips whole blocks
        that provably contain neither a victim (``shrinkable == 0``) nor
        the walk's stop condition (no member outranks the arrival).
        Returns the still-unmet part of ``min_to_free``.
        """
        return self._shrink_pass(
            job.priority, now, min_to_free, max_to_free, decisions,
            self.config.rescale_gap,
        )

    def _shrink_pass(
        self,
        priority: float,
        now: float,
        min_to_free: int,
        max_to_free: int,
        decisions: List[Decision],
        gap: float,
    ) -> int:
        """The Figure-2 victim walk against an explicit rank and gap.

        :meth:`_shrink_victims` calls it with the arriving job's priority
        and the configured rescale gap — the literal submission path.
        Capacity shrinks (:meth:`shrink_capacity`) reuse the identical
        walk with ``priority = +inf`` (every running job except the
        protected index-0 one is a candidate) and, when forced by an
        interruption, ``gap = -inf`` (reclaiming a dead node is not a
        policy decision, so the rescale-gap courtesy does not apply).
        """
        if self._obs is not None:
            self._obs_shrink_passes.inc()
        blocks = self.running.blocks
        for b in range(len(blocks) - 1, -1, -1):
            if max_to_free <= 0:
                break
            block = blocks[b]
            jobs = block.jobs
            lo = 1 if b == 0 else 0
            if lo < len(jobs):
                if now - block.newest_action >= gap and (
                    jobs[-1].request.priority > priority
                ):
                    return min_to_free  # the literal walk breaks immediately
                if block.shrinkable == 0 and jobs[lo].request.priority <= priority:
                    continue  # no victims and no stop condition in here
            for i in range(len(jobs) - 1, lo - 1, -1):
                if max_to_free <= 0:
                    break
                candidate = jobs[i]
                if now - candidate.last_action < gap:
                    continue
                if candidate.request.priority > priority:
                    return min_to_free
                floor = candidate.request.min_replicas
                old_replicas = candidate.replicas
                if old_replicas > floor:
                    new_replicas = old_replicas - max_to_free
                    if new_replicas < floor:
                        new_replicas = floor
                    shrink = self._shrink(candidate, new_replicas, now)
                    if shrink is not None:
                        decisions.append(shrink)
                        freed = old_replicas - new_replicas
                        min_to_free -= freed
                        max_to_free -= freed
        return min_to_free

    # ------------------------------------------------------------------
    # Hooked submission paths (backfill-eligibility, capacity-constraint)
    # ------------------------------------------------------------------
    #
    # The paper's Figure 2 lets any arrival start past a non-empty queue
    # (the stated out-of-order-allocation feature) and knows only one
    # budget, slots.  The hook stages generalize both; each path is only
    # entered when its hook is configured, so the four paper policies
    # never reach this code.

    def _submit_backfill(self, job: SchedulerJob, now: float) -> List[Decision]:
        """An arrival that would start past a non-empty queue is a
        *backfill* and must pass the backfill-eligibility stage (EASY:
        the start may not delay the reserved queue head).

        A backfill has to fit in the currently free slots — rearranging
        running jobs to make room for a queue-jumper would contradict the
        reservation the stage protects — so no Figure-2 shrink walk runs
        here.
        """
        request = job.request
        avail = self.free_slots - self.config.launcher_slots
        replicas = avail if avail < request.max_replicas else request.max_replicas
        decisions: List[Decision] = []
        if replicas >= request.min_replicas and self._backfill.allows(
            self, job, replicas, now
        ):
            decisions.append(self._start(job, replicas, now))
        else:
            decisions.append(self._enqueue(job))
        return self._log(decisions)

    def _submit_constrained(self, job: SchedulerJob, now: float) -> List[Decision]:
        """Figure 2 under an active capacity constraint: the dual budget.

        Starts are capped by both free slots and :meth:`CapacityConstraint
        .admit`; the shrink walk chases a *dual* deficit (slots and
        constraint units), making elastic shrink the constraint's
        actuator — the power-capped scenario's whole point.  The walk is
        the literal Figure-2 shape (no aggregate credits: block
        aggregates know nothing of constraint weights).
        """
        request = job.request
        cons = self._constraint
        reserve = self.config.launcher_slots
        req_min = request.min_replicas
        req_max = request.max_replicas
        decisions: List[Decision] = []

        avail = self.free_slots - reserve
        room = cons.admit(request)
        limit = avail if avail < room else room
        replicas = limit if limit < req_max else req_max
        if replicas >= req_min:
            if (
                self._backfill is not None
                and len(self.queue)
                and not self._backfill.allows(self, job, replicas, now)
            ):
                decisions.append(self._enqueue(job))
            else:
                decisions.append(self._start(job, replicas, now))
            return self._log(decisions)
        if self._backfill is not None and len(self.queue):
            # Queue-jumpers never trigger shrinks (see _submit_backfill).
            decisions.append(self._enqueue(job))
            return self._log(decisions)

        weight = cons.weight(request)
        slot_deficit = req_min - avail
        unit_deficit = req_min * weight - cons.headroom()
        if not self._constrained_shrink_feasible(
            job, now, slot_deficit, unit_deficit
        ):
            decisions.append(self._enqueue(job))
            return self._log(decisions)

        self._constrained_shrink(
            job, now, req_max - avail, req_max * weight - cons.headroom(),
            decisions,
        )
        avail = self.free_slots - reserve
        room = cons.admit(request)
        limit = avail if avail < room else room
        replicas = limit if limit < req_max else req_max
        if replicas >= req_min:
            decisions.append(self._start(job, replicas, now))
        else:  # a shrink_filter vetoed part of the committed plan
            decisions.append(self._enqueue(job))
        return self._log(decisions)

    def _constrained_shrink_feasible(
        self, job: SchedulerJob, now: float, slot_deficit: int,
        unit_deficit: float,
    ) -> bool:
        """Dry-run the dual-deficit shrink walk (pure, literal order)."""
        if slot_deficit <= 0 and unit_deficit <= 0:
            return True
        gap = self.config.rescale_gap
        cons = self._constraint
        priority = job.request.priority
        running = self.running
        for i in range(len(running) - 1, 0, -1):
            candidate = running[i]
            if now - candidate.last_action < gap:
                continue
            if candidate.request.priority > priority:
                return False
            extra = candidate.replicas - candidate.request.min_replicas
            if extra > 0:
                slot_deficit -= extra
                unit_deficit -= extra * cons.weight(candidate.request)
                if slot_deficit <= 0 and unit_deficit <= 0:
                    return True
        return slot_deficit <= 0 and unit_deficit <= 0

    def _constrained_shrink(
        self,
        job: SchedulerJob,
        now: float,
        slot_target: int,
        unit_target: float,
        decisions: List[Decision],
    ) -> None:
        """The committing dual-deficit walk: shrink victims until both
        the slot and the constraint-unit targets are met (or the literal
        walk's stop conditions end it)."""
        gap = self.config.rescale_gap
        cons = self._constraint
        priority = job.request.priority
        # Snapshot: _shrink never reorders the list (the sort key is
        # priority-based), but iterating a frozen view is simpler to
        # reason about than live block pointers under mutation.
        snapshot = list(self.running)
        for i in range(len(snapshot) - 1, 0, -1):
            if slot_target <= 0 and unit_target <= 0:
                break
            candidate = snapshot[i]
            if now - candidate.last_action < gap:
                continue
            if candidate.request.priority > priority:
                break
            floor = candidate.request.min_replicas
            old = candidate.replicas
            if old <= floor:
                continue
            weight = cons.weight(candidate.request)
            want = slot_target if slot_target > 0 else 0
            if unit_target > 0 and weight > 0:
                from_units = int(math.ceil(unit_target / weight))
                if from_units > want:
                    want = from_units
            new = old - want
            if new < floor:
                new = floor
            if new < old:
                shrink = self._shrink(candidate, new, now)
                if shrink is not None:
                    decisions.append(shrink)
                    freed = old - new
                    slot_target -= freed
                    unit_target -= freed * weight

    # ------------------------------------------------------------------
    # Event: job finished (Figure 3)
    # ------------------------------------------------------------------

    def on_complete(self, name: str, now: float) -> List[Decision]:
        job = self._jobs.get(name)
        if job is None:
            raise JobStateError(f"unknown job {name!r}")
        if job.state != JobState.RUNNING:
            raise JobStateError(f"job {name!r} is {job.state.value}, not Running")
        # freeWorkers(job): release the job's pods.
        job.state = JobState.COMPLETED
        job.completion_time = now
        self.running.remove(job)
        freed = job.replicas + self.config.launcher_slots
        self._used_slots -= freed
        if self._constraint is not None:
            self._constraint.charge(job.request, -job.replicas)
        job.replicas = 0
        if self.config.literal_completion_budget:
            # Figure 3 verbatim: redistribute only this job's workers.
            num_workers = freed
        else:
            # Deadlock-free default: the budget is everything now free
            # (this completion plus leftovers from earlier events).
            num_workers = self.free_slots

        decisions: List[Decision] = []
        spans = self.spans
        if spans is not None:
            spans.begin("redistribute", budget=num_workers, trigger="complete")
        self._pending_starts = []
        try:
            self._redistribute(num_workers, now, decisions)
        finally:
            started, self._pending_starts = self._pending_starts, None
            for moved in started:
                self.queue.remove(moved)
                self.running.add(moved)
            if spans is not None:
                spans.end("redistribute", decisions=len(decisions))
        # Remaining freed workers return to the free pool implicitly.
        return self._log(decisions)

    def _redistribute(
        self, num_workers: int, now: float, decisions: List[Decision]
    ) -> None:
        """Figure 3's hand-out of freed slots — indexed two-pointer merge.

        On the queue side, whole blocks whose cheapest member needs more
        than the remaining start budget are skipped in O(1) — the budget
        only shrinks during a walk, so a skipped queued candidate can
        never become startable later.  On the running side (PR 5), whole
        blocks with nothing to hand out are skipped from their
        aggregates: every member at ``max_replicas`` (``expandable ==
        0``), or no member past the rescale gap (``now - oldest_action <
        gap``, with ``oldest_action`` a lower bound on the members'
        ``last_action``).  A skipped running candidate would have emitted
        nothing and consumed no budget, so the emitted decision sequence
        is exactly the literal scan's (:meth:`_redistribute_scan`, which
        time-dependent-priority subclasses still use).
        """
        if self._obs is not None:
            self._obs_redistributes.inc()
        if self._constraint is not None or self._backfill is not None:
            # Hooked policies take the literal scan: constraint caps and
            # backfill gates are per-candidate state the block aggregates
            # cannot express.  Hook-free configs never reach this branch.
            return self._redistribute_scan(num_workers, now, decisions)
        reserve = self.config.launcher_slots
        gap = self.config.rescale_gap
        qblocks = self.queue.blocks
        rblocks = self.running.blocks
        nq = len(qblocks)
        nr = len(rblocks)  # stable: the walk defers structural mutations
        qb = qi = 0
        rb = ri = rn = 0
        # O(1)-skipped block tallies (local ints; flushed to the metrics
        # registry after the walk — skips are O(blocks), not O(events)).
        qskips = rskips = 0
        rjobs = None  # member run of the running block being walked
        runner = None  # cached next possibly-expandable runner (+ its key)
        runner_key = None
        queued = None  # cached next startable queued candidate (+ its key)
        queued_key = None
        while num_workers > 0:
            # Next queued candidate startable within the remaining budget.
            # The cached one stays valid until consumed or priced out by a
            # budget drop (the budget never grows during a walk).
            budget = num_workers - reserve
            if queued is not None and queued.request.min_replicas > budget:
                queued = None
            while queued is None and qb < nq:
                block = qblocks[qb]
                if block.min_needed > budget:
                    qb += 1
                    qi = 0
                    qskips += 1
                    continue
                jobs = block.jobs
                jn = len(jobs)
                while qi < jn:
                    candidate = jobs[qi]
                    if candidate.request.min_replicas <= budget:
                        queued = candidate
                        queued_key = candidate.sort_key
                        break
                    qi += 1
                if queued is None:
                    qb += 1
                    qi = 0
            # Next running candidate, skipping whole blocks that provably
            # cannot take slots (every member at max, or none past the
            # rescale gap).  Expansions only touch aggregates of already-
            # visited members (never block structure), so the cached
            # member run stays valid for the whole walk.  Members of a
            # block always carry a computed ``sort_key`` (add() built it).
            if runner is None:
                while True:
                    if rjobs is not None and ri < rn:
                        runner = rjobs[ri]
                        runner_key = runner.sort_key
                        ri += 1
                        break
                    rjobs = None
                    if rb >= nr:
                        break
                    block = rblocks[rb]
                    rb += 1
                    if block.expandable == 0 or now - block.oldest_action < gap:
                        rskips += 1
                        continue
                    rjobs = block.jobs
                    rn = len(rjobs)
                    ri = 0
            if runner is None and queued is None:
                break
            if queued is None or (runner is not None and runner_key < queued_key):
                candidate = runner
                runner = None
                if now - candidate.last_action >= gap:
                    replicas = candidate.replicas
                    room = candidate.request.max_replicas - replicas
                    if room > 0:
                        add = room if room < num_workers else num_workers
                        if replicas + add >= candidate.request.min_replicas:
                            decisions.append(
                                self._expand(candidate, replicas + add, now)
                            )
                            num_workers -= add
            else:
                candidate = queued
                queued = None
                qi += 1  # the walk moves past this candidate either way
                request = candidate.request
                if (
                    now - candidate.last_action >= gap
                    and candidate.replicas < request.max_replicas
                ):
                    # Starting a queued job also needs its launcher slot.
                    add = num_workers - reserve
                    if add > request.max_replicas:
                        add = request.max_replicas
                    if add >= request.min_replicas:
                        decisions.append(self._start_queued(candidate, add, now))
                        num_workers -= add + reserve
        if self._obs is not None:
            if qskips:
                self._obs_queue_skips.inc(qskips)
            if rskips:
                self._obs_running_skips.inc(rskips)

    def _redistribute_scan(
        self, num_workers: int, now: float, decisions: List[Decision]
    ) -> None:
        """The literal Figure-3 scan over :meth:`_candidates_by_priority`.

        Kept as the reference shape of the walk — and as the live path
        for subclasses whose candidate order is time-dependent (aging),
        where block aggregates keyed on static priority cannot apply.
        """
        reserve = self.config.launcher_slots
        gap = self.config.rescale_gap
        cons = self._constraint
        backfill = self._backfill
        passed_queued = False  # a queued job was left waiting upstream
        for candidate in self._candidates_by_priority():
            if num_workers <= 0:
                break
            if now - candidate.last_action < gap:
                if candidate.state == JobState.QUEUED:
                    passed_queued = True
                continue
            if candidate.replicas < candidate.max_replicas:
                add = min(num_workers, candidate.max_replicas - candidate.replicas)
                if candidate.state == JobState.QUEUED:
                    # Starting a queued job also needs its launcher slot.
                    add = min(num_workers - reserve, candidate.max_replicas)
                    if cons is not None:
                        room = cons.admit(candidate.request)
                        if room < add:
                            add = room
                    if add >= candidate.min_replicas and (
                        backfill is None
                        or not passed_queued
                        or backfill.allows(self, candidate, add, now)
                    ):
                        decisions.append(self._start_queued(candidate, add, now))
                        num_workers -= add + reserve
                    else:
                        passed_queued = True
                else:
                    if cons is not None:
                        room = cons.admit(candidate.request)
                        if room < add:
                            add = room
                    if add > 0 and candidate.replicas + add >= candidate.min_replicas:
                        decisions.append(
                            self._expand(candidate, candidate.replicas + add, now)
                        )
                        num_workers -= add

    # ------------------------------------------------------------------
    # Elastic cluster capacity (the repro.cloud substrate)
    # ------------------------------------------------------------------
    #
    # The paper schedules on a cloud, where ``total_slots`` is itself a
    # time-varying quantity: nodes come online after a provisioning
    # delay, drain away when an autoscaler releases them, and vanish
    # outright when a spot instance is reclaimed.  These transitions are
    # *substrate* events, not Figure-2/3 policy decisions — a substrate
    # that never calls them (every fixed-capacity caller) gets a bytewise
    # unchanged engine, which is what the golden decision-log suite
    # pins.  Both transitions maintain the O(1) ``free_slots`` counter
    # and the :class:`IndexedJobList` aggregates through the existing
    # transition helpers only.

    def grow_capacity(self, slots: int, now: float) -> List[Decision]:
        """Add ``slots`` to the cluster and hand them out (Figure 3).

        Called by the cloud substrate when a provisioned node comes
        online.  The enlarged free pool is redistributed exactly like a
        completion's freed workers: queued jobs start, running elastic
        jobs expand, in decreasing priority order.
        """
        slots = int(slots)
        if slots <= 0:
            raise CapacityError(f"capacity growth must be positive, got {slots}")
        self.total_slots += slots
        return self.rebalance(now)

    def shrink_capacity(
        self, slots: int, now: float, *, force: bool = False
    ) -> Tuple[int, List[Decision]]:
        """Remove up to ``slots`` from the cluster; returns what came off.

        Free slots are surrendered first.  If they do not cover the
        request, the engine *drains*: the Figure-2 shrink-victim walk
        runs with a rank above every job (``priority = +inf``), so every
        running elastic job except the protected index-0 one gives up
        replicas down to its minimum, newest-priority first — the same
        machinery, aggregates, and skip logic an arriving job would use.

        ``force=False`` (autoscaler scale-down) is cooperative: the walk
        respects ``T_rescale_gap`` and the removal is *partial* — only
        what is actually free afterwards comes off, and the caller
        re-issues the shrink later for the remainder (cordon-and-drain:
        capacity already removed can never be re-allocated to the queue
        while the rest of the node drains).

        ``force=True`` (spot interruption) must reclaim everything ``now``:
        the walk ignores the rescale gap, and any remaining deficit is
        met by evicting whole running jobs back to the queue
        (:class:`RequeueJob`), lowest priority first — the protected
        index-0 job last of all, because a dead node protects nobody.

        Returns ``(removed, decisions)`` with ``removed <= slots`` (always
        ``== min(slots, total_slots)`` when forced).
        """
        slots = int(slots)
        if slots <= 0:
            raise CapacityError(f"capacity shrink must be positive, got {slots}")
        slots = min(slots, self.total_slots)
        decisions: List[Decision] = []
        deficit = slots - self.free_slots
        if deficit > 0:
            gap = float("-inf") if force else self.config.rescale_gap
            self._shrink_pass(
                float("inf"), now, deficit, deficit, decisions, gap
            )
            deficit = slots - self.free_slots
        if deficit > 0 and force:
            # Evict whole jobs, lowest priority first; the snapshot is
            # taken up front because _requeue mutates the running list.
            for candidate in list(reversed(self.running)):
                if self.free_slots >= slots:
                    break
                decisions.append(self._requeue(candidate, now))
        removed = min(slots, self.free_slots)
        self.total_slots -= removed
        return removed, self._log(decisions)

    def eviction_candidates(self, slots: int) -> List[SchedulerJob]:
        """Running jobs a forced shrink of ``slots`` *might* requeue.

        A pure preview for the fault-recovery path: when a reclaim
        notice arrives, the substrate checkpoints the jobs that the
        eventual ``shrink_capacity(..., force=True)`` could evict.  The
        preview is a conservative superset — it ignores the relief the
        shrink-victim walk would provide, walking the running list in
        eviction order (lowest priority first) until the accumulated
        replicas cover the deficit — because checkpointing a job that
        ends up surviving costs only the modeled write, while missing
        one that dies loses all its progress.  No engine state changes.
        """
        deficit = int(slots) - self.free_slots
        candidates: List[SchedulerJob] = []
        if deficit <= 0:
            return candidates
        covered = 0
        for job in reversed(self.running):
            if covered >= deficit:
                break
            candidates.append(job)
            covered += job.replicas
        return candidates

    def rebalance(self, now: float) -> List[Decision]:
        """Redistribute the current free pool (Figure 3, budget-only).

        Used by the cloud substrate after capacity changes that free
        slots outside a completion event — a node coming online, or the
        slack left when an interruption's evictions freed more than the
        dead node held.
        """
        budget = self.free_slots
        decisions: List[Decision] = []
        if budget <= 0:
            return decisions
        spans = self.spans
        if spans is not None:
            spans.begin("redistribute", budget=budget, trigger="rebalance")
        self._pending_starts = []
        try:
            self._redistribute(budget, now, decisions)
        finally:
            started, self._pending_starts = self._pending_starts, None
            for moved in started:
                self.queue.remove(moved)
                self.running.add(moved)
            if spans is not None:
                spans.end("redistribute", decisions=len(decisions))
        return self._log(decisions)

    def _requeue(self, job: SchedulerJob, now: float) -> RequeueJob:
        """Evict a running job to the queue (forced capacity loss only).

        ``last_action`` resets to ``-inf``, the value a never-started
        submission carries: the job is starting over, and it must be
        immediately restartable when capacity returns — under the
        moldable policy (``T_rescale_gap = ∞``) any finite timestamp
        would gate its restart forever, deadlocking the workload on the
        first interruption.  Eviction is the cloud's doing, not one of
        the job's §3.2.1 scheduling events, so no rescale-gap penalty
        applies.
        """
        self.running.remove(job)
        released = job.replicas
        self._used_slots -= released + self.config.launcher_slots
        if self._constraint is not None:
            self._constraint.charge(job.request, -released)
        job.replicas = 0
        job.state = JobState.QUEUED
        job.last_action = -math.inf
        self.queue.add(job)
        return RequeueJob(job=job, released_replicas=released)

    # ------------------------------------------------------------------
    # Substrate feedback
    # ------------------------------------------------------------------

    def on_rescale_failed(self, name: str, actual_replicas: int) -> None:
        """Reconcile bookkeeping after the substrate failed a rescale.

        The operator reverts a failed shrink/expand to the application's
        actual size; the engine must follow or its free-slot arithmetic
        drifts from the cluster.
        """
        job = self.job(name)
        if job.state != JobState.RUNNING:
            raise JobStateError(f"job {name!r} is not running")
        actual = int(actual_replicas)
        old = job.replicas
        self._used_slots += actual - job.replicas
        if self._constraint is not None and actual != old:
            self._constraint.charge(job.request, actual - old)
        job.replicas = actual
        self.running.adjust_replicas(job, old)
        if self.free_slots < 0:  # pragma: no cover - defensive
            raise CapacityError("rescale failure reconciliation over-committed")

    def retire(self, name: str) -> SchedulerJob:
        """Drop a completed job's record from the engine's bookkeeping.

        Streaming substrates (``retain="metrics"``) call this after
        folding the job's outcome so ``_jobs`` stays bounded by the live
        (running + queued) job count instead of growing with the workload.
        """
        job = self.job(name)
        if job.state != JobState.COMPLETED:
            raise JobStateError(
                f"cannot retire job {name!r} in state {job.state.value}"
            )
        del self._jobs[name]
        return job

    # ------------------------------------------------------------------
    # Internal transitions (each updates lastAction, per §3.2.1)
    # ------------------------------------------------------------------

    def _activate(self, job: SchedulerJob, replicas: int, now: float) -> StartJob:
        """Mark ``job`` running and charge its slots (no list placement).

        ``start_time`` records the *first* start only: a job restarting
        after a preemption or a spot eviction began service at its
        original start, and the metrics window (first start .. last
        completion) must keep covering the busy slot-time it burned
        before losing its node — a shifted window would count that work
        outside the utilization denominator.
        """
        taken = replicas + self.config.launcher_slots
        self._validate_capacity(taken)
        if self._constraint is not None:
            # Launcher slots carry no constraint weight: the budget is a
            # per-worker quantity (watts), not a slot count.
            self._constraint.charge(job.request, replicas)
        job.state = JobState.RUNNING
        job.replicas = replicas
        job.last_action = now
        if job.start_time is None:
            job.start_time = now
        self._used_slots += taken
        return StartJob(job=job, replicas=replicas)

    def _start(self, job: SchedulerJob, replicas: int, now: float) -> StartJob:
        start = self._activate(job, replicas, now)
        self.running.add(job)
        return start

    def _start_queued(self, job: SchedulerJob, replicas: int, now: float) -> StartJob:
        if self._pending_starts is not None:
            # Mid-walk in on_complete: defer the queue→running move so the
            # walk's block pointers never see a structural mutation.  The
            # queue's aggregates still track the in-place activation so
            # the deferred remove() stays exact.
            before = job.replicas
            start = self._activate(job, replicas, now)
            self.queue.rescaled(job, before)
            self._pending_starts.append(job)
            return start
        self.queue.remove(job)
        return self._start(job, replicas, now)

    def _enqueue(self, job: SchedulerJob) -> EnqueueJob:
        # NOTE: lastAction deliberately untouched (see module docstring).
        job.state = JobState.QUEUED
        self.queue.add(job)
        return EnqueueJob(job=job)

    def _shrink(self, job: SchedulerJob, new_replicas: int, now: float) -> Optional[ShrinkJob]:
        if self.config.shrink_filter is not None and not self.config.shrink_filter(
            job, new_replicas
        ):
            return None
        old = job.replicas
        job.replicas = new_replicas
        job.last_action = now
        job.rescale_count += 1
        self._used_slots -= old - new_replicas
        if self._constraint is not None:
            self._constraint.charge(job.request, new_replicas - old)
        self.running.rescaled(job, old)
        return ShrinkJob(job=job, from_replicas=old, to_replicas=new_replicas)

    def _expand(self, job: SchedulerJob, new_replicas: int, now: float) -> ExpandJob:
        self._validate_capacity(new_replicas - job.replicas)
        old = job.replicas
        job.replicas = new_replicas
        job.last_action = now
        job.rescale_count += 1
        self._used_slots += new_replicas - old
        if self._constraint is not None:
            self._constraint.charge(job.request, new_replicas - old)
        self.running.rescaled(job, old)
        return ExpandJob(job=job, from_replicas=old, to_replicas=new_replicas)

    def _validate_capacity(self, extra_slots: int) -> None:
        # Inline free-slot arithmetic: this guard runs on every start and
        # expansion, and the ``free_slots`` property's own over-commit
        # check is redundant right before a >= comparison.
        if extra_slots > self.total_slots - self._used_slots:
            raise CapacityError(
                f"decision needs {extra_slots} slots but only "
                f"{self.free_slots} are free"
            )

    def _log(self, decisions: List[Decision]) -> List[Decision]:
        if self.keep_decision_log:
            self.decision_log.extend(decisions)
        if self._obs is not None and decisions:
            counter = self._obs.counter
            for decision in decisions:
                counter("engine.decisions." + type(decision).__name__).inc()
        return decisions

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Tuple[str, int]]:
        """(state, replicas) per job — used by invariant tests."""
        return {
            name: (job.state.value, job.replicas) for name, job in self._jobs.items()
        }
