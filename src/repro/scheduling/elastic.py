"""The priority-based elastic scheduling policy — Figures 2 and 3.

This is the paper's core contribution (§3.2.1), implemented faithfully
from the pseudocode, including its quirks (documented in DESIGN.md §3):

* the running-job scan uses ``index > 0``, so the single highest-priority
  running job is never considered for shrinking;
* the stop condition is strict ``j.priority > job.priority``: *equal*
  -priority running jobs are eligible shrink victims even though the
  submission-time tie-break ranks them above the newcomer;
* a new submission is scheduled independently of the queue — a low-priority
  job can start in free slots while higher-priority jobs wait (the stated
  out-of-order-allocation feature);
* enqueueing does **not** update ``lastAction`` (otherwise moldable —
  elastic with :math:`T_{rescale\\_gap} = \\infty` — could never start
  queued jobs, contradicting §4.3.2).

Two deviations (both documented in DESIGN.md §3):

* starting a *queued* job consumes ``launcher_slots`` in addition to its
  workers; Figure 3's budget arithmetic omits that launcher slot.  With
  the simulator default ``launcher_slots = 0`` this is exactly the
  pseudocode;
* ``completeJob``'s redistribution budget defaults to *all* currently
  free slots rather than only this completion's freed workers — the
  literal budget can strand a queued job forever (see
  ``PolicyConfig.literal_completion_budget``, which restores the verbatim
  behaviour for ablation).

Per-event complexity (the PR-2 hot-path contract)
-------------------------------------------------

The engine keeps ``running`` and ``queue`` **permanently sorted** by
:func:`priority_order_key` (``bisect.insort``) and tracks used slots
incrementally, so with ``n`` live (running + queued) jobs:

* ``free_slots`` is O(1) — a counter maintained by every transition
  (start/shrink/expand/complete/preempt/rescale-failed), never a re-sum;
* start/enqueue insert in O(log n) comparisons (plus a C-level memmove);
* completion removes the finished job in O(log n) and walks Figure 3's
  ``allJobs`` through a **lazy** two-list merge, consuming only as many
  candidates as the slot budget survives — no O(n log n) re-sort, no
  O(n) snapshot allocation;
* the Figure-2 shrink scan remains O(running) in the worst case, as the
  algorithm itself demands (it must visit every potential victim).

Decision sequences are **byte-identical** to the preserved pre-
optimization engine (:mod:`repro.scheduling._reference`); the golden
decision-log equivalence test
(``tests/scheduling/test_decision_log_equivalence.py``) enforces the
contract across randomized workloads for every policy configuration, so
the documented Figure-2/3 quirks provably survive the refactor.  For
streaming substrates, :meth:`ElasticPolicyEngine.retire` and
:attr:`ElasticPolicyEngine.keep_decision_log` bound the engine's memory
by the live-job count instead of the workload length.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import CapacityError, JobStateError
from .job import JobRequest, JobState, SchedulerJob, priority_order_key
from .policy import (
    Decision,
    EnqueueJob,
    ExpandJob,
    PolicyConfig,
    ShrinkJob,
    StartJob,
)

__all__ = ["ElasticPolicyEngine"]


def _sorted_remove(jobs: List[SchedulerJob], job: SchedulerJob) -> None:
    """Remove ``job`` from a list sorted by :func:`priority_order_key`.

    O(log n) comparisons via bisect; the key is unique (``seq`` tie-break)
    and immutable after submission, so the probe lands exactly on the job.
    """
    index = bisect_left(jobs, priority_order_key(job), key=priority_order_key)
    if index < len(jobs) and jobs[index] is job:
        del jobs[index]
    else:  # pragma: no cover - defensive against key tampering
        jobs.remove(job)


class ElasticPolicyEngine:
    """Pure-logic implementation of the Figure-2/3 scheduling algorithm.

    The engine owns the scheduler's bookkeeping (running list, internal
    priority queue, per-job ``lastAction``) and emits decisions; the
    substrate applies them to reality and reports completions back.
    """

    def __init__(self, total_slots: int, config: Optional[PolicyConfig] = None):
        if total_slots < 1:
            raise CapacityError("total_slots must be positive")
        self.total_slots = int(total_slots)
        self.config = config or PolicyConfig()
        self.running: List[SchedulerJob] = []  # decreasing priority order
        self.queue: List[SchedulerJob] = []  # decreasing priority order
        self._jobs: Dict[str, SchedulerJob] = {}
        self.decision_log: List[Decision] = []
        #: Streaming substrates set this False so the log stays empty and
        #: memory is bounded by live jobs, not workload length.
        self.keep_decision_log: bool = True
        #: Slots held by running jobs (workers + launcher reservations),
        #: maintained incrementally by every transition.
        self._used_slots: int = 0
        # During on_complete's lazy candidate walk, queue→running moves are
        # recorded here and applied after the walk (the merge iterator must
        # not see structural mutations mid-flight).
        self._pending_starts: Optional[List[SchedulerJob]] = None

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def free_slots(self) -> int:
        """Slots not held by running jobs (workers + launcher reservations)."""
        free = self.total_slots - self._used_slots
        if free < 0:
            raise CapacityError(
                f"scheduler over-committed: {self._used_slots}/"
                f"{self.total_slots} slots"
            )
        return free

    def job(self, name: str) -> SchedulerJob:
        try:
            return self._jobs[name]
        except KeyError:
            raise JobStateError(f"unknown job {name!r}") from None

    def jobs_by_priority(self) -> List[SchedulerJob]:
        """Running and queued jobs in decreasing priority (Fig 3's allJobs)."""
        return list(self._candidates_by_priority())

    def _candidates_by_priority(self) -> Iterator[SchedulerJob]:
        """Lazy merge of the two sorted lists in decreasing priority.

        Both lists are permanently sorted by :func:`priority_order_key`
        with unique keys, so a two-pointer merge reproduces exactly what
        ``sorted(running + queue)`` used to build — without materializing
        it.  Callers must not structurally mutate ``running``/``queue``
        while consuming the iterator (``on_complete`` defers its moves via
        ``_pending_starts``).
        """
        run, que = self.running, self.queue
        i = j = 0
        len_run, len_que = len(run), len(que)
        while i < len_run and j < len_que:
            if priority_order_key(run[i]) < priority_order_key(que[j]):
                yield run[i]
                i += 1
            else:
                yield que[j]
                j += 1
        while i < len_run:
            yield run[i]
            i += 1
        while j < len_que:
            yield que[j]
            j += 1

    # ------------------------------------------------------------------
    # Event: new job submitted (Figure 2)
    # ------------------------------------------------------------------

    def on_submit(self, request: JobRequest, now: float) -> List[Decision]:
        request = self.config.job_transform(request)
        if request.name in self._jobs:
            raise JobStateError(f"job {request.name!r} already submitted")
        job = SchedulerJob(request=request, submit_time=now)
        self._jobs[job.name] = job
        reserve = self.config.launcher_slots
        gap = self.config.rescale_gap
        decisions: List[Decision] = []

        # replicas = min(freeSlots - 1, job.maxReplicas)
        replicas = min(self.free_slots - reserve, job.max_replicas)
        if replicas >= job.min_replicas:
            decisions.append(self._start(job, replicas, now))
            return self._log(decisions)

        # Dry run: would shrinking lower-priority jobs free enough slots to
        # reach the new job's minimum?
        num_to_free = job.min_replicas - (self.free_slots - reserve)
        index = len(self.running) - 1
        while num_to_free > 0 and index > 0:
            candidate = self.running[index]
            index -= 1
            if now - candidate.last_action < gap:
                continue
            if candidate.priority > job.priority:
                break
            if candidate.replicas > candidate.min_replicas:
                new_replicas = max(
                    candidate.min_replicas, candidate.replicas - num_to_free
                )
                num_to_free -= candidate.replicas - new_replicas
        if num_to_free > 0:
            decisions.append(self._enqueue(job))
            return self._log(decisions)

        # Real pass: shrink towards freeing up to maxReplicas' worth.
        min_to_free = job.min_replicas - (self.free_slots - reserve)
        max_to_free = job.max_replicas - (self.free_slots - reserve)
        index = len(self.running) - 1
        while max_to_free > 0 and index > 0:
            candidate = self.running[index]
            index -= 1
            if now - candidate.last_action < gap:
                continue
            if candidate.priority > job.priority:
                break
            if candidate.replicas > candidate.min_replicas:
                new_replicas = max(
                    candidate.min_replicas, candidate.replicas - max_to_free
                )
                old_replicas = candidate.replicas
                shrink = self._shrink(candidate, new_replicas, now)
                if shrink is not None:
                    decisions.append(shrink)
                    freed = old_replicas - new_replicas
                    min_to_free -= freed
                    max_to_free -= freed
        if min_to_free > 0:
            decisions.append(self._enqueue(job))
            return self._log(decisions)

        replicas = min(self.free_slots - reserve, job.max_replicas)
        decisions.append(self._start(job, replicas, now))
        return self._log(decisions)

    # ------------------------------------------------------------------
    # Event: job finished (Figure 3)
    # ------------------------------------------------------------------

    def on_complete(self, name: str, now: float) -> List[Decision]:
        job = self.job(name)
        if job.state != JobState.RUNNING:
            raise JobStateError(f"job {name!r} is {job.state.value}, not Running")
        # freeWorkers(job): release the job's pods.
        job.state = JobState.COMPLETED
        job.completion_time = now
        _sorted_remove(self.running, job)
        freed = job.replicas + self.config.launcher_slots
        self._used_slots -= freed
        job.replicas = 0
        if self.config.literal_completion_budget:
            # Figure 3 verbatim: redistribute only this job's workers.
            num_workers = freed
        else:
            # Deadlock-free default: the budget is everything now free
            # (this completion plus leftovers from earlier events).
            num_workers = self.free_slots

        reserve = self.config.launcher_slots
        gap = self.config.rescale_gap
        decisions: List[Decision] = []
        self._pending_starts = []
        try:
            for candidate in self._candidates_by_priority():
                if num_workers <= 0:
                    break
                if now - candidate.last_action < gap:
                    continue
                if candidate.replicas < candidate.max_replicas:
                    add = min(num_workers, candidate.max_replicas - candidate.replicas)
                    if candidate.state == JobState.QUEUED:
                        # Starting a queued job also needs its launcher slot.
                        add = min(num_workers - reserve, candidate.max_replicas)
                        if add >= candidate.min_replicas:
                            decisions.append(self._start_queued(candidate, add, now))
                            num_workers -= add + reserve
                    elif candidate.replicas + add >= candidate.min_replicas:
                        decisions.append(self._expand(candidate, candidate.replicas + add, now))
                        num_workers -= add
        finally:
            started, self._pending_starts = self._pending_starts, None
            for moved in started:
                _sorted_remove(self.queue, moved)
                insort(self.running, moved, key=priority_order_key)
        # Remaining freed workers return to the free pool implicitly.
        return self._log(decisions)

    # ------------------------------------------------------------------
    # Substrate feedback
    # ------------------------------------------------------------------

    def on_rescale_failed(self, name: str, actual_replicas: int) -> None:
        """Reconcile bookkeeping after the substrate failed a rescale.

        The operator reverts a failed shrink/expand to the application's
        actual size; the engine must follow or its free-slot arithmetic
        drifts from the cluster.
        """
        job = self.job(name)
        if job.state != JobState.RUNNING:
            raise JobStateError(f"job {name!r} is not running")
        actual = int(actual_replicas)
        self._used_slots += actual - job.replicas
        job.replicas = actual
        if self.free_slots < 0:  # pragma: no cover - defensive
            raise CapacityError("rescale failure reconciliation over-committed")

    def retire(self, name: str) -> SchedulerJob:
        """Drop a completed job's record from the engine's bookkeeping.

        Streaming substrates (``retain="metrics"``) call this after
        folding the job's outcome so ``_jobs`` stays bounded by the live
        (running + queued) job count instead of growing with the workload.
        """
        job = self.job(name)
        if job.state != JobState.COMPLETED:
            raise JobStateError(
                f"cannot retire job {name!r} in state {job.state.value}"
            )
        del self._jobs[name]
        return job

    # ------------------------------------------------------------------
    # Internal transitions (each updates lastAction, per §3.2.1)
    # ------------------------------------------------------------------

    def _activate(self, job: SchedulerJob, replicas: int, now: float) -> StartJob:
        """Mark ``job`` running and charge its slots (no list placement)."""
        taken = replicas + self.config.launcher_slots
        self._validate_capacity(taken)
        job.state = JobState.RUNNING
        job.replicas = replicas
        job.last_action = now
        job.start_time = now
        self._used_slots += taken
        return StartJob(job=job, replicas=replicas)

    def _start(self, job: SchedulerJob, replicas: int, now: float) -> StartJob:
        start = self._activate(job, replicas, now)
        insort(self.running, job, key=priority_order_key)
        return start

    def _start_queued(self, job: SchedulerJob, replicas: int, now: float) -> StartJob:
        if self._pending_starts is not None:
            # Mid-walk in on_complete: defer the queue→running move so the
            # lazy merge iterator never sees a structural mutation.
            self._pending_starts.append(job)
            return self._activate(job, replicas, now)
        _sorted_remove(self.queue, job)
        return self._start(job, replicas, now)

    def _enqueue(self, job: SchedulerJob) -> EnqueueJob:
        # NOTE: lastAction deliberately untouched (see module docstring).
        job.state = JobState.QUEUED
        insort(self.queue, job, key=priority_order_key)
        return EnqueueJob(job=job)

    def _shrink(self, job: SchedulerJob, new_replicas: int, now: float) -> Optional[ShrinkJob]:
        if self.config.shrink_filter is not None and not self.config.shrink_filter(
            job, new_replicas
        ):
            return None
        old = job.replicas
        job.replicas = new_replicas
        job.last_action = now
        job.rescale_count += 1
        self._used_slots -= old - new_replicas
        return ShrinkJob(job=job, from_replicas=old, to_replicas=new_replicas)

    def _expand(self, job: SchedulerJob, new_replicas: int, now: float) -> ExpandJob:
        self._validate_capacity(new_replicas - job.replicas)
        old = job.replicas
        job.replicas = new_replicas
        job.last_action = now
        job.rescale_count += 1
        self._used_slots += new_replicas - old
        return ExpandJob(job=job, from_replicas=old, to_replicas=new_replicas)

    def _validate_capacity(self, extra_slots: int) -> None:
        if extra_slots > self.free_slots:
            raise CapacityError(
                f"decision needs {extra_slots} slots but only "
                f"{self.free_slots} are free"
            )

    def _log(self, decisions: List[Decision]) -> List[Decision]:
        if self.keep_decision_log:
            self.decision_log.extend(decisions)
        return decisions

    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Tuple[str, int]]:
        """(state, replicas) per job — used by invariant tests."""
        return {
            name: (job.state.value, job.replicas) for name, job in self._jobs.items()
        }
