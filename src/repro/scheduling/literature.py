"""Schedulers from the literature, registered on the policy registry.

The paper's evaluation stops at its four policies; the ROADMAP's "policy
diversity" item asks for the classic space next to them.  This module
ships the first residents, built entirely on the
:class:`~repro.scheduling.policy.SchedulingPolicy` hook stages:

* **ewt** — estimated-waiting-time priority rule: jobs with less
  estimated work outrank longer ones at equal user priority
  (queue-ordering stage; the SJF-flavoured EWT heuristic of the
  accasim schedulers-from-literature collection).
* **prb** — priority-rule-based ordering (Borghesi et al.): a weighted
  blend of user priority, estimated runtime, and requested size.
* **easy-backfill** — EASY backfilling (Lifka's aggressive variant):
  an arrival may jump the queue only if it provably does not delay the
  *reserved queue head*; ``conservative=True`` protects every waiting
  job, not just the head (backfill-eligibility stage).

Runtime estimates come from the same §4.3.1 performance model the
simulator integrates (``timesteps × step_time(replicas)``), so for
non-rescaling jobs the estimate is *exact* — which is why
``easy-backfill`` defaults to ``rescale_gap = inf`` (moldable sizing):
under it the reservation bound is not a heuristic but a guarantee, and
the property suite can assert heads are never delayed.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Tuple

from .job import JobRequest, JobState, SchedulerJob, priority_order_key
from .policies import DEFAULT_RESCALE_GAP
from .policy import PolicyConfig
from .registry import REGISTRY

__all__ = [
    "estimate_runtime",
    "ewt_priority",
    "prb_priority",
    "EasyBackfill",
    "DEFAULT_RUNTIME_ESTIMATE",
]

#: Fallback when a request carries neither a size class nor an estimate.
DEFAULT_RUNTIME_ESTIMATE = 3600.0

# Lazy import memo: repro.scheduling must stay importable without the
# performance-model stack, but estimate_runtime sits on the EASY hot
# path (every projection touches every running job), so the import
# machinery must run once, not per call.
_PERFMODEL = None


def _perfmodel():
    global _PERFMODEL
    if _PERFMODEL is None:
        from ..perfmodel.datasets import size_class, step_time_model

        _PERFMODEL = (size_class, step_time_model)
    return _PERFMODEL


def estimate_runtime(request: JobRequest, replicas: int) -> float:
    """Estimated runtime of ``request`` at a fixed ``replicas``.

    Uses the §4.3.1 size-class model exactly as the simulator does
    (``params["timesteps"]`` overriding the class default), so the
    estimate matches the simulated runtime of a job that never rescales.
    Requests outside the model fall back to ``params["est_runtime"]``,
    then to :data:`DEFAULT_RUNTIME_ESTIMATE`.
    """
    params = request.params or {}
    name = params.get("size_class") or request.size_class
    if name is not None:
        size_class, step_time_model = _perfmodel()
        try:
            cls = size_class(name)
        except KeyError:
            cls = None
        if cls is not None:
            steps = params.get("timesteps", cls.timesteps)
            fixed = min(max(replicas, cls.min_replicas), cls.max_replicas)
            return float(steps) * float(step_time_model(cls)(fixed))
    est = params.get("est_runtime")
    if est is not None:
        return float(est)
    return DEFAULT_RUNTIME_ESTIMATE


def ewt_priority(request: JobRequest) -> float:
    """Queue-ordering stage: less estimated work ⇒ higher rank.

    At its minimum size a job's estimated runtime is the longest it can
    take; negating it makes short jobs outrank long ones while the
    submission-time tie-break keeps FIFO among equals.
    """
    return -estimate_runtime(request, request.min_replicas)


def prb_priority(request: JobRequest) -> float:
    """Priority-rule-based blend (Borghesi et al.-style weights).

    User priority dominates (weight 2 per level); among similar
    priorities, shorter and narrower jobs rank first.  Log scales keep
    one term from drowning the others across the §4.3.1 size range.
    """
    est = estimate_runtime(request, request.min_replicas)
    return (
        2.0 * request.priority
        - math.log2(1.0 + est / 60.0)
        - math.log2(float(request.min_replicas))
    )


class EasyBackfill:
    """EASY backfilling as a backfill-eligibility stage.

    ``allows`` projects the cluster forward using the same runtime
    estimates the simulator integrates: the *reserved* jobs (the queue
    head, or every waiting job when ``conservative``) each get the
    earliest time enough slots accumulate for their minimum size.  A
    backfill candidate is admitted only if every reservation computed
    *with* the candidate running is no later than *without* it.

    ``last_reservations`` keeps the most recent with-candidate
    projection (job name → reserved start time).  Only the *head* entry
    is a hard bound: non-head projections under ``conservative`` commit
    each reserved job at its minimum size, while the engine's moldable
    sizing may start an earlier job wider and push later waiters out —
    so ``last_head_reservations`` tracks the head entries alone, and the
    property suite asserts heads actually start by their reserved times.
    """

    #: Estimate-memo epoch bound: cleared wholesale at this size, so
    #: streaming runs don't pin every completed job's request forever.
    _EST_CACHE_LIMIT = 20_000

    def __init__(self, conservative: bool = False):
        self.conservative = bool(conservative)
        self.last_reservations: Dict[str, float] = {}
        self.last_head_reservations: Dict[str, float] = {}
        self._est_cache: Dict[Tuple[int, int], Tuple[JobRequest, float]] = {}

    def _estimate(self, request: JobRequest, replicas: int) -> float:
        # Keyed by identity (requests carry an unhashable params dict);
        # the stored reference keeps the id from being recycled while
        # the entry lives, and the estimate is a pure function of the
        # request, so a hit is always exact.
        key = (id(request), replicas)
        hit = self._est_cache.get(key)
        if hit is not None and hit[0] is request:
            return hit[1]
        if len(self._est_cache) >= self._EST_CACHE_LIMIT:
            self._est_cache.clear()
        est = estimate_runtime(request, replicas)
        self._est_cache[key] = (request, est)
        return est

    # -- BackfillRule --------------------------------------------------

    def allows(self, engine, job: SchedulerJob, replicas: int,
               now: float) -> bool:
        # The queue iterates in priority_order_key order, so everything
        # "ahead" of the candidate sits before it (and before the first
        # key >= its own): break there instead of scanning the whole
        # backlog, and after one hit in the aggressive variant — this
        # runs per scan candidate, and O(queue) here is what used to
        # make deep-backlog walks quadratic.
        key = priority_order_key(job)
        ahead: List[SchedulerJob] = []
        for q in engine.queue:
            if q is job or priority_order_key(q) >= key:
                break
            if q.state == JobState.QUEUED:
                ahead.append(q)
                if not self.conservative:
                    break
        if not ahead:
            return True  # starting the head is never a backfill
        launcher = engine.config.launcher_slots
        free, releases = self._release_profile(engine, now, launcher)
        base = self._project(ahead, free, list(releases), now, launcher)
        need = replicas + launcher
        releases.append((now + self._estimate(job.request, replicas), need))
        trial = self._project(ahead, free - need, releases, now, launcher)
        for name, reserved_at in trial.items():
            if reserved_at > base[name] + 1e-9:
                return False
        self.last_reservations.update(trial)
        head = ahead[0].name
        self.last_head_reservations[head] = trial[head]
        return True

    # -- the shadow-profile projection ---------------------------------

    def _release_profile(
        self, engine, now: float, launcher: int
    ) -> Tuple[int, List[Tuple[float, int]]]:
        """Free slots plus the (finish, slots) release of every running
        job — including pending starts deferred mid-walk (the engine
        parks them on ``_pending_starts`` while they are still
        physically in the queue; their slots are already charged).
        Shared by the with- and without-candidate projections so each
        ``allows`` prices the running set once.
        """
        releases: List[Tuple[float, int]] = []

        def finish(record: SchedulerJob) -> float:
            remaining = self._estimate(record.request, record.replicas)
            started = record.last_action
            if started == -math.inf or math.isnan(started):
                started = now
            done = started + remaining
            return done if done > now else now

        for record in engine.running:
            releases.append((finish(record), record.replicas + launcher))
        pending = getattr(engine, "_pending_starts", None)
        if pending:
            for record in pending:
                releases.append((finish(record), record.replicas + launcher))
        return engine.free_slots, releases

    def _project(
        self,
        reserved: List[SchedulerJob],
        free: int,
        releases: List[Tuple[float, int]],
        now: float,
        launcher: int,
    ) -> Dict[str, float]:
        """Earliest start time per reserved job under estimated finishes.

        Reserved jobs are committed at their minimum size in order, each
        adding its own release for the conservative chain.  ``releases``
        is consumed (heapified in place).
        """
        heapq.heapify(releases)
        out: Dict[str, float] = {}
        for head in reserved:
            need = head.request.min_replicas + launcher
            at = now
            while free < need and releases:
                at, slots = heapq.heappop(releases)
                free += slots
            if free < need:
                out[head.name] = math.inf  # can never start in this profile
                continue
            out[head.name] = at
            free -= need
            heapq.heappush(
                releases,
                (at + self._estimate(head.request,
                                     head.request.min_replicas), need),
            )
        return out


# -- registrations -----------------------------------------------------


@REGISTRY.register(
    "ewt", tags=("literature", "priority-rule"),
    description="estimated-waiting-time ordering: least estimated work first",
)
def _ewt(
    rescale_gap: float = DEFAULT_RESCALE_GAP,
    launcher_slots: int = 0,
    shrink_filter=None,
) -> PolicyConfig:
    return PolicyConfig(
        name="ewt",
        rescale_gap=rescale_gap,
        launcher_slots=launcher_slots,
        shrink_filter=shrink_filter,
        priority_rule=ewt_priority,
    )


@REGISTRY.register(
    "prb", tags=("literature", "priority-rule"),
    description="priority-rule-based blend of priority, runtime, and width",
)
def _prb(
    rescale_gap: float = DEFAULT_RESCALE_GAP,
    launcher_slots: int = 0,
    shrink_filter=None,
) -> PolicyConfig:
    return PolicyConfig(
        name="prb",
        rescale_gap=rescale_gap,
        launcher_slots=launcher_slots,
        shrink_filter=shrink_filter,
        priority_rule=prb_priority,
    )


@REGISTRY.register(
    "easy-backfill", tags=("literature", "backfill"),
    description="EASY backfilling: starts may not delay the reserved "
                "queue head (conservative=True reserves every waiter)",
)
def _easy_backfill(
    rescale_gap: float = math.inf,  # accepted and ignored, like moldable
    launcher_slots: int = 0,
    shrink_filter=None,
    conservative: bool = False,
) -> PolicyConfig:
    # Gap pinned to inf (moldable sizing), exactly how moldable treats
    # the parameter: jobs never rescale, so the size-class runtime
    # estimates — and with them the head reservation — are exact rather
    # than heuristic, and sweep plumbing that threads a finite default
    # gap through cannot silently weaken the no-delay guarantee.
    return PolicyConfig(
        name="easy-backfill",
        rescale_gap=math.inf,
        launcher_slots=launcher_slots,
        shrink_filter=shrink_filter,
        backfill=EasyBackfill(conservative=conservative),
    )
