"""The pluggable scheduler registry.

The paper evaluates exactly four policies; this module opens that space.
Policies register by name — via decorator, programmatic :meth:`
SchedulerRegistry.register`, or ``repro.policies`` entry points from
third-party packages — and every consumer (CLI, schedsim, cloud sweeps,
benches) resolves them through one surface::

    from repro.scheduling.registry import REGISTRY

    @REGISTRY.register("sjf", description="shortest job first")
    def _sjf(rescale_gap=180.0, **overrides):
        return PolicyConfig(name="sjf", priority_rule=..., ...)

    config = REGISTRY.resolve("sjf", rescale_gap=60.0)

A *factory* takes keyword overrides and returns a configuration
satisfying the :class:`~repro.scheduling.policy.SchedulingPolicy`
protocol (in practice a :class:`~repro.scheduling.policy.PolicyConfig`)
whose ``name`` matches the registered name.

Third-party discovery uses the ``repro.policies`` entry-point group: the
loaded object is either a module/object exposing
``register_policies(registry)`` or a factory registered under the entry
point's own name.  Discovery is lazy — triggered by the first unknown
name or the first listing — so importing :mod:`repro.scheduling` never
pays for ``importlib.metadata``.

Cache integrity: :meth:`SchedulerRegistry.external_salt` hashes the
source of every factory living outside the ``repro`` package, and
:func:`repro.schedsim.cache.code_salt`'s consumers append it — so trial
results cached under an external policy are invalidated when that
policy's code changes, exactly like in-tree code edits.
"""

from __future__ import annotations

import hashlib
import inspect
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import SchedulingError
from .policy import SchedulingPolicy

__all__ = [
    "PolicySpec",
    "SchedulerRegistry",
    "UnknownPolicyError",
    "PolicyRegistrationError",
    "REGISTRY",
    "register",
    "resolve",
    "list_policies",
    "describe",
]

#: Entry-point group third-party packages use to ship policies.
ENTRY_POINT_GROUP = "repro.policies"


class UnknownPolicyError(SchedulingError, ValueError):
    """Resolution failed: no policy registered under that name.

    Also a :class:`ValueError` so long-standing callers of the
    ``make_policy`` shim (and its documented contract) keep working.
    """


class PolicyRegistrationError(SchedulingError, ValueError):
    """Registration rejected (duplicate name, bad factory, bad name)."""


@dataclass(frozen=True)
class PolicySpec:
    """One registered policy: the factory plus its introspection card."""

    name: str
    factory: Callable[..., SchedulingPolicy]
    description: str = ""
    tags: Tuple[str, ...] = ()
    #: True for the four policies of the paper's evaluation (§4.3).
    paper: bool = False
    #: Where the registration came from ("builtin", "entry-point", ...).
    source: str = "builtin"


class SchedulerRegistry:
    """Name → :class:`PolicySpec` mapping with entry-point discovery."""

    def __init__(self):
        self._specs: Dict[str, PolicySpec] = {}
        self._entry_points_loaded = False

    # -- registration --------------------------------------------------

    def register(
        self,
        name: str,
        factory: Optional[Callable[..., SchedulingPolicy]] = None,
        *,
        description: str = "",
        tags: Tuple[str, ...] = (),
        paper: bool = False,
        source: str = "builtin",
        replace: bool = False,
    ):
        """Register ``factory`` under ``name``.

        Usable programmatically (``register(name, factory)``) or as a
        decorator (``@register(name, description=...)``).  Duplicate
        names are an error unless ``replace=True``.
        """
        if not isinstance(name, str) or not name:
            raise PolicyRegistrationError(
                f"policy name must be a non-empty string, got {name!r}"
            )

        def _do_register(func):
            if not callable(func):
                raise PolicyRegistrationError(
                    f"policy {name!r}: factory must be callable, got {func!r}"
                )
            if name in self._specs and not replace:
                raise PolicyRegistrationError(
                    f"policy {name!r} is already registered "
                    f"(source: {self._specs[name].source}); "
                    f"pass replace=True to override"
                )
            self._specs[name] = PolicySpec(
                name=name,
                factory=func,
                description=description,
                tags=tuple(tags),
                paper=paper,
                source=source,
            )
            return func

        if factory is None:
            return _do_register  # decorator form
        return _do_register(factory)

    # -- resolution ----------------------------------------------------

    def resolve(self, name: str, **overrides) -> SchedulingPolicy:
        """Build the named policy's configuration with ``overrides``.

        The returned configuration must carry the registered name — a
        factory that labels its output differently would silently
        corrupt every name-keyed consumer (metrics tables, sweep grids,
        trial-cache keys).
        """
        spec = self._specs.get(name)
        if spec is None:
            # A third-party package may provide it: discover lazily.
            self.load_entry_points()
            spec = self._specs.get(name)
        if spec is None:
            raise UnknownPolicyError(
                f"unknown policy {name!r}; available: "
                f"{tuple(self.list_policies())}"
            )
        config = spec.factory(**overrides)
        got = getattr(config, "name", None)
        if got != name:
            raise PolicyRegistrationError(
                f"policy {name!r}: factory returned a config named {got!r}"
            )
        return config

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    # -- introspection -------------------------------------------------

    def list_policies(self) -> List[str]:
        """All registered names, paper policies first, then by
        registration order (includes entry-point discoveries)."""
        self.load_entry_points()
        names = list(self._specs)
        return sorted(names, key=lambda n: (not self._specs[n].paper,))

    def paper_policies(self) -> Tuple[str, ...]:
        """The four policies of the paper's evaluation, in its order."""
        return tuple(n for n, s in self._specs.items() if s.paper)

    def describe(self, name: str) -> PolicySpec:
        spec = self._specs.get(name)
        if spec is None:
            self.load_entry_points()
            spec = self._specs.get(name)
        if spec is None:
            raise UnknownPolicyError(
                f"unknown policy {name!r}; available: "
                f"{tuple(self.list_policies())}"
            )
        return spec

    # -- third-party discovery -----------------------------------------

    @staticmethod
    def _iter_entry_points():
        """The ``repro.policies`` entry points (monkeypatch point)."""
        from importlib import metadata

        try:
            return tuple(metadata.entry_points(group=ENTRY_POINT_GROUP))
        except Exception:  # pragma: no cover - importlib quirks
            return ()

    def load_entry_points(self, force: bool = False) -> int:
        """Discover third-party policies; returns how many registered.

        Each entry point loads to either an object exposing
        ``register_policies(registry)`` (full control: many policies,
        custom descriptions) or a plain factory registered under the
        entry point's own name.  A load failure or a name collision with
        an existing registration warns and skips — one broken plugin
        must not take down the paper's policies.
        """
        if self._entry_points_loaded and not force:
            return 0
        self._entry_points_loaded = True
        registered = 0
        for entry_point in self._iter_entry_points():
            try:
                loaded = entry_point.load()
                hook = getattr(loaded, "register_policies", None)
                if callable(hook):
                    hook(self)
                    registered += 1
                    continue
                if entry_point.name in self._specs:
                    warnings.warn(
                        f"entry point {entry_point.name!r} collides with an "
                        f"already-registered policy; skipping",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    continue
                self.register(
                    entry_point.name, loaded, source="entry-point",
                    description=(inspect.getdoc(loaded) or "").partition(
                        "\n"
                    )[0],
                )
                registered += 1
            except Exception as exc:  # noqa: BLE001 - plugin isolation
                warnings.warn(
                    f"failed to load policy entry point "
                    f"{getattr(entry_point, 'name', entry_point)!r}: {exc}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return registered

    # -- cache integrity -----------------------------------------------

    def external_salt(self) -> str:
        """Hash of every factory registered from outside ``repro``.

        Empty when only in-tree policies are registered — in-tree code
        is already covered by :func:`repro.schedsim.cache.code_salt`'s
        source-tree walk, and returning ``""`` keeps existing cache keys
        valid for every user without plugins.
        """
        parts = []
        for name in sorted(self._specs):
            spec = self._specs[name]
            module = getattr(spec.factory, "__module__", "") or ""
            if module == "repro" or module.startswith("repro."):
                continue
            try:
                source = inspect.getsource(spec.factory)
            except (OSError, TypeError):
                source = repr(spec.factory)
            parts.append(f"{name}:{module}:{source}")
        if not parts:
            return ""
        return hashlib.sha256("\0".join(parts).encode()).hexdigest()[:16]


#: The process-wide registry every consumer resolves against.
REGISTRY = SchedulerRegistry()


def register(name, factory=None, **kwargs):
    """Register on the process-wide :data:`REGISTRY` (decorator-friendly)."""
    return REGISTRY.register(name, factory, **kwargs)


def resolve(name: str, **overrides) -> SchedulingPolicy:
    """Resolve against the process-wide :data:`REGISTRY`."""
    return REGISTRY.resolve(name, **overrides)


def list_policies() -> List[str]:
    """Names on the process-wide :data:`REGISTRY`."""
    return REGISTRY.list_policies()


def describe(name: str) -> PolicySpec:
    """Introspection card from the process-wide :data:`REGISTRY`."""
    return REGISTRY.describe(name)
