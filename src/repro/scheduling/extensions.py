"""Policy extensions the paper discusses but does not evaluate (§3.2.2, §6).

* :class:`AgingPolicyEngine` — "a dynamic priority system could be
  implemented to gradually increase the priority of waiting jobs, ensuring
  that low-priority jobs get resources during times of high traffic"
  (§3.2.2, *Aging priorities*).
* :class:`PreemptivePolicyEngine` — "lower-priority jobs could be sent a
  signal to checkpoint to disk and then be preempted to make room for
  higher-priority jobs ... restarted from [the] checkpoint at a later
  time" (§3.2.2, *Job preemption*).

Both extend the Figure-2/3 engine without modifying it; the evaluated
system is untouched when these classes are not used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import islice
from typing import Iterator, List, Optional

from .elastic import ElasticPolicyEngine
from .job import JobState, SchedulerJob
from .policy import Decision, EnqueueJob, PolicyConfig, StartJob

__all__ = ["AgingPolicyEngine", "PreemptivePolicyEngine", "PreemptJob",
           "ResumeJob"]


class AgingPolicyEngine(ElasticPolicyEngine):
    """Elastic policy with queue aging.

    A queued job's effective priority grows by one level per
    ``aging_interval`` seconds of waiting (capped at ``max_priority``), so
    long-starved submissions eventually outrank fresher, nominally-higher
    work when completions hand out freed slots.  Running jobs keep their
    user priority — aging only orders the *queue*, so the evaluated
    shrink-victim logic (Figure 2) is unchanged.
    """

    def __init__(
        self,
        total_slots: int,
        config: Optional[PolicyConfig] = None,
        aging_interval: float = 600.0,
        max_priority: int = 10,
    ):
        super().__init__(total_slots, config)
        if aging_interval <= 0:
            raise ValueError("aging_interval must be positive")
        self.aging_interval = float(aging_interval)
        self.max_priority = int(max_priority)

    def effective_priority(self, job: SchedulerJob, now: float) -> int:
        if job.state != JobState.QUEUED:
            return job.priority
        waited = max(0.0, now - job.submit_time)
        boost = int(waited // self.aging_interval)
        return min(self.max_priority, job.priority + boost)

    def jobs_by_priority(self, now: Optional[float] = None) -> List[SchedulerJob]:
        """Decreasing *effective* priority (aged queue entries rise)."""
        if now is None:
            now = self._now_hint
        return sorted(
            self.running + self.queue,
            key=lambda j: (-self.effective_priority(j, now), j.submit_time, j.seq),
        )

    def _candidates_by_priority(self) -> Iterator[SchedulerJob]:
        # Effective priorities are time-dependent, so the base engine's
        # lazy static-key merge does not apply: aging keeps the O(n log n)
        # snapshot sort (queues under aging are completion-ordered anyway).
        return iter(self.jobs_by_priority())

    def _redistribute(self, num_workers, now, decisions):
        # The base engine's indexed Figure-3 walk skips queue blocks from
        # aggregates keyed on *static* priority order; aged queues are
        # ordered by effective priority, so aging keeps the literal scan.
        self._redistribute_scan(num_workers, now, decisions)

    # The base on_complete calls jobs_by_priority() with no argument; stash
    # the event time so the aged ordering is computed against it.
    _now_hint: float = 0.0

    def on_submit(self, request, now: float):
        self._now_hint = now
        return super().on_submit(request, now)

    def on_complete(self, name: str, now: float):
        self._now_hint = now
        return super().on_complete(name, now)

    # Capacity transitions redistribute through _candidates_by_priority
    # too, so the aged ordering needs the event time stashed the same way.

    def grow_capacity(self, slots: int, now: float):
        self._now_hint = now
        return super().grow_capacity(slots, now)

    def shrink_capacity(self, slots: int, now: float, *, force: bool = False):
        self._now_hint = now
        return super().shrink_capacity(slots, now, force=force)

    def rebalance(self, now: float):
        self._now_hint = now
        return super().rebalance(now)


@dataclass(frozen=True)
class PreemptJob(Decision):
    """Checkpoint a running job to disk and release all its slots.

    The job returns to the queue with its progress preserved; the
    substrate must charge the disk checkpoint cost and, on resume, the
    restore cost.
    """

    released_replicas: int


@dataclass(frozen=True)
class ResumeJob(Decision):
    """A preempted job restarting from its disk checkpoint."""

    replicas: int


class PreemptivePolicyEngine(ElasticPolicyEngine):
    """Elastic policy with checkpoint-to-disk preemption as a last resort.

    Figure-2 semantics are tried first (free slots, then shrinking).  Only
    when a *strictly higher-priority* arrival still cannot reach its
    minimum does the engine preempt running lower-priority jobs — lowest
    effective priority first, never the protected index-0 job — until the
    arrival fits or no victims remain.  Preempted jobs re-enter the queue
    and resume through the normal Figure-3 path (:class:`ResumeJob` is
    emitted instead of :class:`StartJob` so the substrate can charge the
    disk restore).
    """

    def __init__(self, total_slots: int, config: Optional[PolicyConfig] = None):
        super().__init__(total_slots, config)
        self.preempted: set = set()

    def on_submit(self, request, now: float):
        decisions = super().on_submit(request, now)
        if not decisions or not isinstance(decisions[-1], EnqueueJob):
            return decisions
        job = decisions[-1].job
        preemptions = self._try_preempt(job, now)
        if not preemptions:
            return decisions
        # The arrival now fits: pull it back out of the queue and start it.
        self.queue.remove(job)
        replicas = min(
            self.free_slots - self.config.launcher_slots, job.max_replicas
        )
        start = self._start(job, replicas, now)
        return self._log(decisions[:-1] + preemptions + [start])

    def _try_preempt(self, job: SchedulerJob, now: float) -> List[Decision]:
        reserve = self.config.launcher_slots
        needed = job.min_replicas - (self.free_slots - reserve)
        victims: List[SchedulerJob] = []
        freed = 0
        # Lowest priority first, index-0 protected; islice over the lazy
        # reverse iterator stops before the head without materializing
        # the whole running list on every preemption attempt.
        protected = islice(reversed(self.running), max(0, len(self.running) - 1))
        for candidate in protected:
            if freed >= needed:
                break
            if candidate.priority >= job.priority:
                break
            victims.append(candidate)
            freed += candidate.replicas + reserve
        if freed < needed:
            return []
        decisions: List[Decision] = []
        for victim in victims:
            self.running.remove(victim)
            released = victim.replicas
            self._used_slots -= released + reserve
            victim.replicas = 0
            victim.state = JobState.QUEUED
            victim.last_action = now
            self.preempted.add(victim.name)
            self.queue.add(victim)
            decisions.append(PreemptJob(job=victim, released_replicas=released))
        return decisions

    def _start_queued(self, job: SchedulerJob, replicas: int, now: float):
        start = super()._start_queued(job, replicas, now)
        if job.name in self.preempted:
            self.preempted.discard(job.name)
            return ResumeJob(job=job, replicas=replicas)
        return start
