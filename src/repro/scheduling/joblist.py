"""A blocked sorted job list with shrink-victim aggregates.

The PR-2 engine kept ``running``/``queue`` as flat Python lists ordered
by :func:`~repro.scheduling.job.priority_order_key`.  That makes every
insert/remove an O(n) memmove — tolerable — but, much worse, it gives
the Figure-2/3 walks nothing to *skip with*: the Figure-3 redistribution
loop touches every queued candidate even when the freed budget cannot
start any of them, which is the superlinear term behind the 100k-job
throughput cliff (``BENCH_policy_engine.json``: 56k events/s at 10k jobs
vs 6.6k at 100k).

:class:`IndexedJobList` replaces the flat list with a *blocked* sorted
list (the ``sortedcontainers`` layout: a list of small sorted blocks)
whose blocks carry three exact aggregates the scheduling walks consume:

``shrinkable``
    Sum of ``max(0, replicas - min_replicas)`` over the block — the
    slots Figure 2 could reclaim from the block's members.  The dry-run
    pass adds whole blocks in O(1) instead of visiting every running
    job, and the real pass skips blocks with no victims.
``newest_action``
    Upper bound on the members' ``last_action``.  It is raised on every
    add/rescale but never lowered by :meth:`remove` — only the full
    rebuild on block split/merge tightens it — so it may stay stale-high
    arbitrarily long.  A block whose bound is older than ``now -
    T_rescale_gap`` is provably *wholly* rescale-gap-eligible, enabling
    the aggregate fast paths; a stale bound merely downgrades a block to
    the item-by-item scan, never changes a decision.  Nothing may assume
    the bound is tight.
``min_needed``
    Minimum ``min_replicas`` over the block.  The Figure-3 walk skips
    whole queue blocks whose cheapest member cannot start within the
    remaining slot budget — the budget only shrinks during a walk, so a
    skipped block can never become startable again.

The container still behaves like the sorted list it replaces: indexing,
slicing, iteration, ``len``, ``in``, equality with plain lists, and
``insert`` (so external ``bisect.insort`` callers keep working) — the
engine's public ``running``/``queue`` attributes and every test that
pokes them see the same sequence as before.

Aggregate maintenance contract: when the engine mutates ``replicas``
and/or ``last_action`` of a job *while the job is in the list* (sort
keys are immutable, so ordering never changes), it must notify the list
— :meth:`rescaled` for the usual both-fields shrink/expand transition
(one block locate), or :meth:`adjust_replicas` / :meth:`touch` when only
one field moved.  :meth:`add` / :meth:`remove` fold members in and out
exactly.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Iterable, Iterator, List, Optional

from .job import SchedulerJob, priority_order_key

__all__ = ["IndexedJobList", "BLOCK_LOAD"]

#: Target block size.  Splits happen at twice this, merges below half;
#: 64 keeps the per-block memmove inside a cache line or two while the
#: block count at 100k queued jobs stays ~1.5k.
BLOCK_LOAD = 64


def _surplus(job: SchedulerJob) -> int:
    """The slots Figure 2 could reclaim from ``job`` (never negative)."""
    extra = job.replicas - job.request.min_replicas
    return extra if extra > 0 else 0


class _Block:
    """One run of the sorted sequence plus its walk aggregates."""

    __slots__ = ("jobs", "shrinkable", "newest_action", "min_needed")

    def __init__(self, jobs: List[SchedulerJob]):
        self.jobs = jobs
        self.recompute()

    def recompute(self) -> None:
        """Rebuild all three aggregates in one pass (split/merge only)."""
        shrinkable = 0
        newest = float("-inf")
        cheapest = None
        for j in self.jobs:
            needed = j.request.min_replicas
            extra = j.replicas - needed
            if extra > 0:
                shrinkable += extra
            if j.last_action > newest:
                newest = j.last_action
            if cheapest is None or needed < cheapest:
                cheapest = needed
        self.shrinkable = shrinkable
        self.newest_action = newest
        self.min_needed = cheapest


class IndexedJobList:
    """Sorted-by-:func:`priority_order_key` job sequence with aggregates."""

    __slots__ = ("_blocks", "_maxkeys", "_len")

    def __init__(self, jobs: Optional[Iterable[SchedulerJob]] = None):
        self._blocks: List[_Block] = []
        self._maxkeys: List[tuple] = []  # priority_order_key of each block's last job
        self._len = 0
        if jobs:
            for job in sorted(jobs, key=priority_order_key):
                self.add(job)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def _block_for_key(self, key: tuple) -> int:
        """Index of the block that should hold ``key`` (clamped to last)."""
        index = bisect_left(self._maxkeys, key)
        return min(index, len(self._blocks) - 1)

    def add(self, job: SchedulerJob) -> None:
        """Insert keeping sorted order; O(log blocks + block size)."""
        key = priority_order_key(job)
        if not self._blocks:
            self._blocks.append(_Block([job]))
            self._maxkeys.append(key)
            self._len = 1
            return
        b = self._block_for_key(key)
        block = self._blocks[b]
        insort(block.jobs, job, key=priority_order_key)
        block.shrinkable += _surplus(job)
        if job.last_action > block.newest_action:
            block.newest_action = job.last_action
        if job.request.min_replicas < block.min_needed:
            block.min_needed = job.request.min_replicas
        self._maxkeys[b] = priority_order_key(block.jobs[-1])
        self._len += 1
        if len(block.jobs) > 2 * BLOCK_LOAD:
            self._split(b)

    def _split(self, b: int) -> None:
        block = self._blocks[b]
        half = len(block.jobs) // 2
        right = _Block(block.jobs[half:])
        del block.jobs[half:]
        block.recompute()
        self._blocks.insert(b + 1, right)
        self._maxkeys[b] = priority_order_key(block.jobs[-1])
        self._maxkeys.insert(b + 1, priority_order_key(right.jobs[-1]))

    def remove(self, job: SchedulerJob) -> None:
        """Remove by sort key (unique, immutable); O(log blocks + block)."""
        key = priority_order_key(job)
        b = self._block_for_key(key)
        block = self._blocks[b]
        jobs = block.jobs
        i = bisect_left(jobs, key, key=priority_order_key)
        if not (i < len(jobs) and jobs[i] is job):  # pragma: no cover - defensive
            b, i = self._find_linear(job)
            block = self._blocks[b]
            jobs = block.jobs
        del jobs[i]
        self._len -= 1
        if not jobs:
            del self._blocks[b]
            del self._maxkeys[b]
            return
        # Aggregate maintenance without an O(block) rebuild: the sum takes
        # an exact delta; the min is re-derived only when the departing
        # job held it; the time bound is left possibly stale-high — it is
        # an upper bound by contract, and a stale bound merely downgrades
        # a block to the item-by-item scan, never changes a decision.
        block.shrinkable -= _surplus(job)
        if job.request.min_replicas == block.min_needed:
            block.min_needed = min(j.request.min_replicas for j in jobs)
        self._maxkeys[b] = priority_order_key(jobs[-1])
        if len(jobs) < BLOCK_LOAD // 2:
            self._merge(b)

    def _find_linear(self, job: SchedulerJob):  # pragma: no cover - defensive
        for b, block in enumerate(self._blocks):
            for i, candidate in enumerate(block.jobs):
                if candidate is job:
                    return b, i
        raise ValueError(f"job {job.name!r} not in list")

    def _merge(self, b: int) -> None:
        """Fold an underfull block into a neighbour (then re-split if fat)."""
        if len(self._blocks) == 1:
            return
        left = b - 1 if b > 0 else b
        block = self._blocks[left]
        block.jobs.extend(self._blocks[left + 1].jobs)
        del self._blocks[left + 1]
        del self._maxkeys[left + 1]
        block.recompute()
        self._maxkeys[left] = priority_order_key(block.jobs[-1])
        if len(block.jobs) > 2 * BLOCK_LOAD:
            self._split(left)

    # ------------------------------------------------------------------
    # Aggregate notifications (the engine's mutation hooks)
    # ------------------------------------------------------------------

    def adjust_replicas(self, job: SchedulerJob, old_replicas: int) -> None:
        """Reconcile ``shrinkable`` after ``job.replicas`` changed in place."""
        old = old_replicas - job.request.min_replicas
        delta = _surplus(job) - (old if old > 0 else 0)
        if delta:
            block = self._blocks[self._block_for_key(priority_order_key(job))]
            block.shrinkable += delta

    def touch(self, job: SchedulerJob) -> None:
        """Raise the containing block's ``newest_action`` bound.

        The engine's own transitions always change ``replicas`` and
        ``last_action`` together and use :meth:`rescaled`; this single-
        field hook exists for subclasses/external mutators only.
        """
        block = self._blocks[self._block_for_key(priority_order_key(job))]
        if job.last_action > block.newest_action:
            block.newest_action = job.last_action

    def rescaled(self, job: SchedulerJob, old_replicas: int) -> None:
        """One-locate combination of :meth:`adjust_replicas` + :meth:`touch`
        for the shrink/expand hot path (both fields changed together)."""
        block = self._blocks[self._block_for_key(priority_order_key(job))]
        old = old_replicas - job.request.min_replicas
        block.shrinkable += _surplus(job) - (old if old > 0 else 0)
        if job.last_action > block.newest_action:
            block.newest_action = job.last_action

    # ------------------------------------------------------------------
    # Sequence protocol (list compatibility for tests and extensions)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __iter__(self) -> Iterator[SchedulerJob]:
        for block in self._blocks:
            yield from block.jobs

    def __reversed__(self) -> Iterator[SchedulerJob]:
        for block in reversed(self._blocks):
            yield from reversed(block.jobs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self)[index]
        i = index + self._len if index < 0 else index
        if not 0 <= i < self._len:
            raise IndexError("IndexedJobList index out of range")
        for block in self._blocks:
            if i < len(block.jobs):
                return block.jobs[i]
            i -= len(block.jobs)
        raise IndexError("IndexedJobList index out of range")  # pragma: no cover

    def insert(self, index: int, job: SchedulerJob) -> None:
        """Sorted insert, ignoring ``index`` — supports ``bisect.insort``.

        External callers insort with the same :func:`priority_order_key`
        the list is ordered by, so the computed position and ours agree;
        honouring an arbitrary position would break the sort invariant.
        """
        self.add(job)

    def __contains__(self, job) -> bool:
        if not isinstance(job, SchedulerJob) or not self._blocks:
            return False
        key = priority_order_key(job)
        jobs = self._blocks[self._block_for_key(key)].jobs
        i = bisect_left(jobs, key, key=priority_order_key)
        return i < len(jobs) and jobs[i] is job

    def index(self, job: SchedulerJob) -> int:
        offset = 0
        for block in self._blocks:
            if block.jobs and priority_order_key(block.jobs[-1]) >= priority_order_key(job):
                i = bisect_left(block.jobs, priority_order_key(job), key=priority_order_key)
                if i < len(block.jobs) and block.jobs[i] is job:
                    return offset + i
                break
            offset += len(block.jobs)
        raise ValueError(f"job {job.name!r} not in list")

    def __eq__(self, other) -> bool:
        if isinstance(other, IndexedJobList):
            return list(self) == list(other)
        if isinstance(other, list):
            return list(self) == other
        return NotImplemented

    __hash__ = None  # mutable sequence

    def __add__(self, other):
        if isinstance(other, IndexedJobList):
            return list(self) + list(other)
        if isinstance(other, list):
            return list(self) + other
        return NotImplemented

    def __radd__(self, other):
        if isinstance(other, list):
            return other + list(self)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedJobList({list(self)!r})"

    # ------------------------------------------------------------------
    # Walk support
    # ------------------------------------------------------------------

    @property
    def blocks(self) -> List[_Block]:
        """The block run, exposed read-only for the engine's indexed walks."""
        return self._blocks

    def check_invariants(self) -> None:
        """Validate ordering, length, and aggregate bounds (test hook)."""
        seen = 0
        prev_key = None
        for b, block in enumerate(self._blocks):
            assert block.jobs, "empty block retained"
            assert len(block.jobs) <= 2 * BLOCK_LOAD, "oversized block"
            exact_shrinkable = sum(_surplus(j) for j in block.jobs)
            assert block.shrinkable == exact_shrinkable, "shrinkable drifted"
            assert block.newest_action >= max(
                j.last_action for j in block.jobs
            ), "newest_action is not an upper bound"
            assert block.min_needed <= min(
                j.request.min_replicas for j in block.jobs
            ), "min_needed is not a lower bound"
            assert self._maxkeys[b] == priority_order_key(block.jobs[-1])
            for job in block.jobs:
                key = priority_order_key(job)
                assert prev_key is None or prev_key < key, "sort order violated"
                prev_key = key
                seen += 1
        assert seen == self._len, "length counter drifted"
