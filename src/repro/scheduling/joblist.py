"""A blocked sorted job list with shrink-victim aggregates.

The PR-2 engine kept ``running``/``queue`` as flat Python lists ordered
by :func:`~repro.scheduling.job.priority_order_key`.  That makes every
insert/remove an O(n) memmove — tolerable — but, much worse, it gives
the Figure-2/3 walks nothing to *skip with*: the Figure-3 redistribution
loop touches every queued candidate even when the freed budget cannot
start any of them, which is the superlinear term behind the 100k-job
throughput cliff (``BENCH_policy_engine.json``: 56k events/s at 10k jobs
vs 6.6k at 100k).

:class:`IndexedJobList` replaces the flat list with a *blocked* sorted
list (the ``sortedcontainers`` layout: a list of small sorted blocks)
whose blocks carry three exact aggregates the scheduling walks consume:

``shrinkable``
    Sum of ``max(0, replicas - min_replicas)`` over the block — the
    slots Figure 2 could reclaim from the block's members.  The dry-run
    pass adds whole blocks in O(1) instead of visiting every running
    job, and the real pass skips blocks with no victims.
``newest_action``
    Upper bound on the members' ``last_action``.  It is raised on every
    add/rescale but never lowered by :meth:`remove` — only the full
    rebuild on block split/merge tightens it — so it may stay stale-high
    arbitrarily long.  A block whose bound is older than ``now -
    T_rescale_gap`` is provably *wholly* rescale-gap-eligible, enabling
    the aggregate fast paths; a stale bound merely downgrades a block to
    the item-by-item scan, never changes a decision.  Nothing may assume
    the bound is tight.
``min_needed``
    Minimum ``min_replicas`` over the block.  The Figure-3 walk skips
    whole queue blocks whose cheapest member cannot start within the
    remaining slot budget — the budget only shrinks during a walk, so a
    skipped block can never become startable again.  (``_min_count``
    tracks how many members hold the minimum so a removal only rescans
    the block when the *last* holder departs.)
``expandable``
    Sum of ``max(0, max_replicas - replicas)`` over the block — the
    slots Figure 3 could still hand to the block's members.  The
    running side of the redistribution walk skips whole blocks whose
    members are all at their maximum (``expandable == 0``) in O(1);
    the sum is exact, maintained by the same delta discipline as
    ``shrinkable``.
``oldest_action``
    Lower bound on the members' ``last_action`` — the mirror image of
    ``newest_action``.  It is lowered on every add but never raised by
    rescales or removals (only the full rebuild on split/merge tightens
    it), so it may stay stale-low arbitrarily long.  A block whose bound
    satisfies ``now - oldest_action < T_rescale_gap`` provably contains
    *no* rescale-gap-eligible member, so the Figure-3 running walk skips
    it whole; a stale bound merely downgrades the block to the
    item-by-item scan, never changes a decision.

The container still behaves like the sorted list it replaces: indexing,
slicing, iteration, ``len``, ``in``, equality with plain lists, and
``insert`` (so external ``bisect.insort`` callers keep working) — the
engine's public ``running``/``queue`` attributes and every test that
pokes them see the same sequence as before.

Aggregate maintenance contract: when the engine mutates ``replicas``
and/or ``last_action`` of a job *while the job is in the list* (sort
keys are immutable, so ordering never changes), it must notify the list
— :meth:`rescaled` for the usual both-fields shrink/expand transition
(one block locate), or :meth:`adjust_replicas` / :meth:`touch` when only
one field moved.  :meth:`add` / :meth:`remove` fold members in and out
exactly.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator, List, Optional

from .job import SchedulerJob, priority_order_key

__all__ = ["IndexedJobList", "BLOCK_LOAD"]

#: Target block size.  Splits happen at twice this, merges below half;
#: 64 keeps the per-block memmove inside a cache line or two while the
#: block count at 100k queued jobs stays ~1.5k.
BLOCK_LOAD = 64


def _surplus(job: SchedulerJob) -> int:
    """The slots Figure 2 could reclaim from ``job`` (never negative)."""
    extra = job.replicas - job.request.min_replicas
    return extra if extra > 0 else 0


def _headroom(job: SchedulerJob) -> int:
    """The slots Figure 3 could still hand to ``job`` (never negative)."""
    extra = job.request.max_replicas - job.replicas
    return extra if extra > 0 else 0


class _Block:
    """One run of the sorted sequence plus its walk aggregates.

    ``keys`` mirrors ``jobs`` with each member's (immutable)
    :func:`priority_order_key`, so the bisects inside :meth:`IndexedJobList
    .add` / :meth:`remove` run entirely in C instead of calling the key
    function once per comparison probe.
    """

    __slots__ = (
        "jobs",
        "keys",
        "shrinkable",
        "expandable",
        "newest_action",
        "oldest_action",
        "min_needed",
        "_min_count",
    )

    def __init__(self, jobs: List[SchedulerJob], keys: Optional[List[tuple]] = None):
        self.jobs = jobs
        self.keys = keys if keys is not None else [priority_order_key(j) for j in jobs]
        self.recompute()

    def recompute(self) -> None:
        """Rebuild every aggregate in one pass (split/merge only)."""
        shrinkable = 0
        expandable = 0
        newest = float("-inf")
        oldest = float("inf")
        cheapest = None
        cheapest_count = 0
        for j in self.jobs:
            needed = j.request.min_replicas
            replicas = j.replicas
            extra = replicas - needed
            if extra > 0:
                shrinkable += extra
            room = j.request.max_replicas - replicas
            if room > 0:
                expandable += room
            action = j.last_action
            if action > newest:
                newest = action
            if action < oldest:
                oldest = action
            if cheapest is None or needed < cheapest:
                cheapest = needed
                cheapest_count = 1
            elif needed == cheapest:
                cheapest_count += 1
        self.shrinkable = shrinkable
        self.expandable = expandable
        self.newest_action = newest
        self.oldest_action = oldest
        self.min_needed = cheapest
        self._min_count = cheapest_count


class IndexedJobList:
    """Sorted-by-:func:`priority_order_key` job sequence with aggregates."""

    __slots__ = (
        "_blocks",
        "_maxkeys",
        "_len",
        "min_replicas_total",
        "shrinkable_total",
    )

    def __init__(self, jobs: Optional[Iterable[SchedulerJob]] = None):
        self._blocks: List[_Block] = []
        self._maxkeys: List[tuple] = []  # priority_order_key of each block's last job
        self._len = 0
        #: Exact sum of members' ``min_replicas`` — the queue's aggregate
        #: slot demand, read O(1) per autoscaler evaluation instead of a
        #: per-event O(queue) sum.
        self.min_replicas_total = 0
        #: Exact sum of the blocks' ``shrinkable`` sums — the Figure-2
        #: dry run's O(1) infeasibility ceiling.
        self.shrinkable_total = 0
        if jobs:
            for job in sorted(jobs, key=priority_order_key):
                self.add(job)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def _block_for_key(self, key: tuple) -> int:
        """Index of the block that should hold ``key`` (clamped to last)."""
        index = bisect_left(self._maxkeys, key)
        last = len(self._blocks) - 1
        return index if index < last else last

    def add(self, job: SchedulerJob) -> None:
        """Insert keeping sorted order; O(log blocks + block size)."""
        key = priority_order_key(job)
        request = job.request
        self.min_replicas_total += request.min_replicas
        surplus = job.replicas - request.min_replicas
        if surplus > 0:
            self.shrinkable_total += surplus
        if not self._blocks:
            self._blocks.append(_Block([job], [key]))
            self._maxkeys.append(key)
            self._len = 1
            return
        blocks = self._blocks
        b = bisect_left(self._maxkeys, key)
        last = len(blocks) - 1
        if b > last:
            b = last
        block = blocks[b]
        keys = block.keys
        i = bisect_left(keys, key)
        keys.insert(i, key)
        block.jobs.insert(i, job)
        if surplus > 0:
            block.shrinkable += surplus
        room = request.max_replicas - job.replicas
        if room > 0:
            block.expandable += room
        action = job.last_action
        if action > block.newest_action:
            block.newest_action = action
        if action < block.oldest_action:
            block.oldest_action = action
        needed = request.min_replicas
        if needed < block.min_needed:
            block.min_needed = needed
            block._min_count = 1
        elif needed == block.min_needed:
            block._min_count += 1
        self._maxkeys[b] = keys[-1]
        self._len += 1
        if len(keys) > 2 * BLOCK_LOAD:
            self._split(b)

    def _split(self, b: int) -> None:
        block = self._blocks[b]
        half = len(block.jobs) // 2
        right = _Block(block.jobs[half:], block.keys[half:])
        del block.jobs[half:]
        del block.keys[half:]
        block.recompute()
        self._blocks.insert(b + 1, right)
        self._maxkeys[b] = block.keys[-1]
        self._maxkeys.insert(b + 1, right.keys[-1])

    def remove(self, job: SchedulerJob) -> None:
        """Remove by sort key (unique, immutable); O(log blocks + block)."""
        key = job.sort_key or priority_order_key(job)
        blocks = self._blocks
        b = bisect_left(self._maxkeys, key)
        last = len(blocks) - 1
        if b > last:
            b = last
        block = blocks[b]
        jobs = block.jobs
        i = bisect_left(block.keys, key)
        if not (i < len(jobs) and jobs[i] is job):  # pragma: no cover - defensive
            b, i = self._find_linear(job)
            block = self._blocks[b]
            jobs = block.jobs
        del jobs[i]
        del block.keys[i]
        self._len -= 1
        self.min_replicas_total -= job.request.min_replicas
        departing = job.replicas - job.request.min_replicas
        if departing > 0:
            self.shrinkable_total -= departing
        if not jobs:
            del self._blocks[b]
            del self._maxkeys[b]
            return
        # Aggregate maintenance without an O(block) rebuild: the sums take
        # exact deltas; the min is re-derived only when the *last* member
        # holding it departs; the time bounds are left possibly stale
        # (high for newest, low for oldest) — they are one-sided bounds
        # by contract, and a stale bound merely downgrades a block to the
        # item-by-item scan, never changes a decision.
        request = job.request
        if departing > 0:
            block.shrinkable -= departing
        room = request.max_replicas - job.replicas
        if room > 0:
            block.expandable -= room
        if request.min_replicas == block.min_needed:
            if block._min_count > 1:
                block._min_count -= 1
            else:
                cheapest = None
                count = 0
                for j in jobs:
                    needed = j.request.min_replicas
                    if cheapest is None or needed < cheapest:
                        cheapest = needed
                        count = 1
                    elif needed == cheapest:
                        count += 1
                block.min_needed = cheapest
                block._min_count = count
        self._maxkeys[b] = block.keys[-1]
        if len(jobs) < BLOCK_LOAD // 2:
            self._merge(b)

    def _find_linear(self, job: SchedulerJob):  # pragma: no cover - defensive
        for b, block in enumerate(self._blocks):
            for i, candidate in enumerate(block.jobs):
                if candidate is job:
                    return b, i
        raise ValueError(f"job {job.name!r} not in list")

    def _merge(self, b: int) -> None:
        """Fold an underfull block into a neighbour (then re-split if fat)."""
        if len(self._blocks) == 1:
            return
        left = b - 1 if b > 0 else b
        block = self._blocks[left]
        other = self._blocks[left + 1]
        block.jobs.extend(other.jobs)
        block.keys.extend(other.keys)
        del self._blocks[left + 1]
        del self._maxkeys[left + 1]
        block.recompute()
        self._maxkeys[left] = block.keys[-1]
        if len(block.jobs) > 2 * BLOCK_LOAD:
            self._split(left)

    # ------------------------------------------------------------------
    # Aggregate notifications (the engine's mutation hooks)
    # ------------------------------------------------------------------

    def adjust_replicas(self, job: SchedulerJob, old_replicas: int) -> None:
        """Reconcile the replica sums after ``job.replicas`` changed in place."""
        request = job.request
        old = old_replicas - request.min_replicas
        delta = _surplus(job) - (old if old > 0 else 0)
        old_room = request.max_replicas - old_replicas
        room_delta = _headroom(job) - (old_room if old_room > 0 else 0)
        if delta or room_delta:
            block = self._blocks[self._block_for_key(priority_order_key(job))]
            block.shrinkable += delta
            block.expandable += room_delta
            self.shrinkable_total += delta

    def touch(self, job: SchedulerJob) -> None:
        """Raise the containing block's ``newest_action`` bound.

        The engine's own transitions always change ``replicas`` and
        ``last_action`` together and use :meth:`rescaled`; this single-
        field hook exists for subclasses/external mutators only.
        """
        block = self._blocks[self._block_for_key(priority_order_key(job))]
        if job.last_action > block.newest_action:
            block.newest_action = job.last_action

    def rescaled(self, job: SchedulerJob, old_replicas: int) -> None:
        """One-locate combination of :meth:`adjust_replicas` + :meth:`touch`
        for the shrink/expand hot path (both fields changed together).

        ``oldest_action`` stays put: a rescale only *raises* the job's
        ``last_action``, which can never lower the block's minimum — the
        stored value just becomes (safely) stale-low.
        """
        key = job.sort_key or priority_order_key(job)
        blocks = self._blocks
        b = bisect_left(self._maxkeys, key)
        last = len(blocks) - 1
        block = blocks[b if b < last else last]
        request = job.request
        replicas = job.replicas
        old = old_replicas - request.min_replicas
        new = replicas - request.min_replicas
        delta = (new if new > 0 else 0) - (old if old > 0 else 0)
        block.shrinkable += delta
        self.shrinkable_total += delta
        old_room = request.max_replicas - old_replicas
        new_room = request.max_replicas - replicas
        block.expandable += (new_room if new_room > 0 else 0) - (
            old_room if old_room > 0 else 0
        )
        if job.last_action > block.newest_action:
            block.newest_action = job.last_action

    # ------------------------------------------------------------------
    # Sequence protocol (list compatibility for tests and extensions)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __iter__(self) -> Iterator[SchedulerJob]:
        for block in self._blocks:
            yield from block.jobs

    def __reversed__(self) -> Iterator[SchedulerJob]:
        for block in reversed(self._blocks):
            yield from reversed(block.jobs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self)[index]
        i = index + self._len if index < 0 else index
        if not 0 <= i < self._len:
            raise IndexError("IndexedJobList index out of range")
        for block in self._blocks:
            if i < len(block.jobs):
                return block.jobs[i]
            i -= len(block.jobs)
        raise IndexError("IndexedJobList index out of range")  # pragma: no cover

    def insert(self, index: int, job: SchedulerJob) -> None:
        """Sorted insert, ignoring ``index`` — supports ``bisect.insort``.

        External callers insort with the same :func:`priority_order_key`
        the list is ordered by, so the computed position and ours agree;
        honouring an arbitrary position would break the sort invariant.
        """
        self.add(job)

    def __contains__(self, job) -> bool:
        if not isinstance(job, SchedulerJob) or not self._blocks:
            return False
        key = priority_order_key(job)
        block = self._blocks[self._block_for_key(key)]
        i = bisect_left(block.keys, key)
        return i < len(block.jobs) and block.jobs[i] is job

    def index(self, job: SchedulerJob) -> int:
        key = priority_order_key(job)
        offset = 0
        for block in self._blocks:
            if block.keys and block.keys[-1] >= key:
                i = bisect_left(block.keys, key)
                if i < len(block.jobs) and block.jobs[i] is job:
                    return offset + i
                break
            offset += len(block.jobs)
        raise ValueError(f"job {job.name!r} not in list")

    def __eq__(self, other) -> bool:
        if isinstance(other, IndexedJobList):
            return list(self) == list(other)
        if isinstance(other, list):
            return list(self) == other
        return NotImplemented

    __hash__ = None  # mutable sequence

    def __add__(self, other):
        if isinstance(other, IndexedJobList):
            return list(self) + list(other)
        if isinstance(other, list):
            return list(self) + other
        return NotImplemented

    def __radd__(self, other):
        if isinstance(other, list):
            return other + list(self)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IndexedJobList({list(self)!r})"

    # ------------------------------------------------------------------
    # Walk support
    # ------------------------------------------------------------------

    @property
    def blocks(self) -> List[_Block]:
        """The block run, exposed read-only for the engine's indexed walks."""
        return self._blocks

    def check_invariants(self) -> None:
        """Validate ordering, length, and aggregate bounds (test hook)."""
        seen = 0
        prev_key = None
        assert self.min_replicas_total == sum(
            j.request.min_replicas for block in self._blocks for j in block.jobs
        ), "min_replicas_total drifted"
        assert self.shrinkable_total == sum(
            _surplus(j) for block in self._blocks for j in block.jobs
        ), "shrinkable_total drifted"
        for b, block in enumerate(self._blocks):
            assert block.jobs, "empty block retained"
            assert len(block.jobs) <= 2 * BLOCK_LOAD, "oversized block"
            assert block.keys == [
                priority_order_key(j) for j in block.jobs
            ], "keys mirror drifted"
            exact_shrinkable = sum(_surplus(j) for j in block.jobs)
            assert block.shrinkable == exact_shrinkable, "shrinkable drifted"
            exact_expandable = sum(_headroom(j) for j in block.jobs)
            assert block.expandable == exact_expandable, "expandable drifted"
            assert block.newest_action >= max(
                j.last_action for j in block.jobs
            ), "newest_action is not an upper bound"
            assert block.oldest_action <= min(
                j.last_action for j in block.jobs
            ), "oldest_action is not a lower bound"
            exact_min = min(j.request.min_replicas for j in block.jobs)
            assert block.min_needed == exact_min, "min_needed drifted"
            assert block._min_count == sum(
                1 for j in block.jobs if j.request.min_replicas == exact_min
            ), "min_needed holder count drifted"
            assert self._maxkeys[b] == priority_order_key(block.jobs[-1])
            for job in block.jobs:
                key = priority_order_key(job)
                assert prev_key is None or prev_key < key, "sort order violated"
                prev_key = key
                seen += 1
        assert seen == self._len, "length counter drifted"
