"""The four evaluation metrics of §4.3.

* **Total time** — end-to-end runtime from the start of the first job to
  the end of the last job.
* **Cluster utilization** — average fraction of cluster slots occupied by
  job workers over the experiment.
* **Weighted mean response time** — mean of (start − submit), weighted by
  job priority.
* **Weighted mean completion time** — mean of (completion − submit),
  weighted by job priority.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import SchedulingError
from ..units import format_duration

__all__ = [
    "JobOutcome",
    "SchedulerMetrics",
    "compute_metrics",
    "ReplicaTimeline",
    "StreamingTimeline",
    "MetricsAccumulator",
    "FairnessReport",
    "compute_fairness",
    "bounded_slowdown",
    "BOUNDED_SLOWDOWN_THRESHOLD",
]


@dataclass
class ReplicaTimeline:
    """Step function of a job's worker count over time.

    Samples are ``(time, replicas)`` change-points; the job holds
    ``replicas`` workers from that time until the next sample.
    """

    samples: List[Tuple[float, int]] = field(default_factory=list)

    def record(self, time: float, replicas: int) -> None:
        if self.samples and time < self.samples[-1][0]:
            raise SchedulingError("replica timeline must be monotonic in time")
        if self.samples and self.samples[-1][1] == replicas:
            return
        self.samples.append((time, replicas))

    def slot_seconds(self, until: float) -> float:
        """Integral of replicas over time up to ``until``."""
        total = 0.0
        for (t0, r), (t1, _) in zip(self.samples, self.samples[1:]):
            total += r * (min(t1, until) - min(t0, until))
        if self.samples:
            t_last, r_last = self.samples[-1]
            if until > t_last:
                total += r_last * (until - t_last)
        return total

    def value_at(self, time: float) -> int:
        # Samples are time-sorted (record() enforces it), so the last
        # change-point at or before ``time`` is a bisect away; equal-time
        # samples resolve to the latest one, matching the old linear scan.
        index = bisect_right(self.samples, time, key=lambda s: s[0])
        return self.samples[index - 1][1] if index else 0

    def average(self, until: Optional[float] = None) -> float:
        """Mean replica count from the first sample to ``until``.

        ``until`` defaults to the last sample's time.  An empty timeline
        — or a degenerate window (``until`` at or before the first
        sample, including a single-sample timeline with no explicit
        ``until``) — averages to 0.0 rather than dividing by zero.
        """
        if not self.samples:
            return 0.0
        begin = self.samples[0][0]
        if until is None:
            until = self.samples[-1][0]
        span = until - begin
        if span <= 0:
            return 0.0
        return self.slot_seconds(until) / span


class StreamingTimeline:
    """O(1)-memory stand-in for :class:`ReplicaTimeline` under streaming.

    Records the same ``(time, replicas)`` change-points but folds them
    straight into a running busy-slot integral instead of materializing a
    sample list, so a ``retain="metrics"`` simulation holds three floats
    per live job regardless of how often it rescales.  Change-points are
    deduplicated and the integral terms accumulated in exactly the order
    :meth:`ReplicaTimeline.slot_seconds` would sum them, so the two paths
    produce bit-identical utilization numbers.
    """

    __slots__ = ("_time", "_replicas", "_busy", "_started")

    def __init__(self) -> None:
        self._time = 0.0
        self._replicas = 0
        self._busy = 0.0
        self._started = False

    def record(self, time: float, replicas: int) -> None:
        if not self._started:
            self._time = time
            self._replicas = replicas
            self._started = True
            return
        if time < self._time:
            raise SchedulingError("replica timeline must be monotonic in time")
        if replicas == self._replicas:
            return  # same dedupe rule as ReplicaTimeline.record
        self._busy += self._replicas * (time - self._time)
        self._time = time
        self._replicas = replicas

    def slot_seconds(self, until: float) -> float:
        """Integral of replicas over time up to ``until``.

        Unlike the sample-list reduction this cannot integrate into the
        past; streaming callers always ask at (or after) the last
        recorded change-point — the job's completion time.
        """
        if not self._started:
            return 0.0
        if until < self._time:
            raise SchedulingError(
                "StreamingTimeline cannot integrate before its last "
                f"change-point ({until} < {self._time})"
            )
        return self._busy + self._replicas * (until - self._time)

    def value_at(self, time: float) -> int:
        """Current replica count (only the live change-point is kept).

        History is gone by design, so — like :meth:`slot_seconds` — a
        query before the live change-point fails loudly rather than
        silently reporting 0 where :class:`ReplicaTimeline` would have
        returned the historical step value.
        """
        if not self._started:
            return 0
        if time < self._time:
            raise SchedulingError(
                "StreamingTimeline cannot answer before its last "
                f"change-point ({time} < {self._time}); use retain='full' "
                "for historical sampling"
            )
        return self._replicas


@dataclass
class JobOutcome:
    """Everything the metrics need to know about one finished job."""

    name: str
    priority: int
    submit_time: float
    start_time: float
    completion_time: float
    #: Either the full sample list or its streaming stand-in — both
    #: expose ``slot_seconds``/``value_at``, which is all metrics need.
    timeline: Union[ReplicaTimeline, "StreamingTimeline"] = field(
        default_factory=ReplicaTimeline
    )
    size_class: Optional[str] = None
    rescale_count: int = 0
    #: Submitting user (the SWF ``user_id`` field for trace replays;
    #: ``None`` for the paper's anonymous synthetic draws).  Feeds the
    #: per-user fairness metrics.
    user: Optional[str] = None

    @property
    def response_time(self) -> float:
        return self.start_time - self.submit_time

    @property
    def turnaround_time(self) -> float:
        return self.completion_time - self.submit_time

    def validate(self) -> None:
        if not (self.submit_time <= self.start_time <= self.completion_time):
            raise SchedulingError(
                f"job {self.name}: submit <= start <= completion violated "
                f"({self.submit_time}, {self.start_time}, {self.completion_time})"
            )


@dataclass(frozen=True)
class SchedulerMetrics:
    """The Table-1 row for one scheduling policy."""

    policy: str
    total_time: float
    utilization: float
    weighted_mean_response: float
    weighted_mean_completion: float
    job_count: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "total_time": self.total_time,
            "utilization": self.utilization,
            "weighted_mean_response": self.weighted_mean_response,
            "weighted_mean_completion": self.weighted_mean_completion,
        }

    def describe(self) -> str:
        return (
            f"{self.policy:>13}: total={format_duration(self.total_time)} "
            f"util={self.utilization * 100:.2f}% "
            f"resp={self.weighted_mean_response:.2f}s "
            f"compl={self.weighted_mean_completion:.2f}s"
        )


#: Bounded-slowdown runtime floor (seconds).  The standard guard from the
#: parallel-workloads literature: without it, a 1-second job that waited a
#: minute would report a slowdown of 60 and drown every other signal.
BOUNDED_SLOWDOWN_THRESHOLD = 10.0


def bounded_slowdown(
    outcome: JobOutcome, threshold: float = BOUNDED_SLOWDOWN_THRESHOLD
) -> float:
    """max(1, (wait + run) / max(run, threshold)) for one finished job."""
    return _bounded_slowdown_scalar(
        outcome.submit_time, outcome.start_time, outcome.completion_time,
        threshold,
    )


def _bounded_slowdown_scalar(
    submit: float, start: float, end: float, threshold: float
) -> float:
    """The bounded-slowdown formula on raw times — the single source of
    truth shared by the outcome-object path and the streaming scalar path."""
    run = end - start
    slowdown = (end - submit) / (run if run > threshold else threshold)
    return slowdown if slowdown > 1.0 else 1.0


@dataclass(frozen=True)
class FairnessReport:
    """Per-user fairness over one run — the dispersion of service quality.

    Mean bounded slowdown is computed per user (jobs with no user
    attribution share one anonymous bucket); a scheduler is *fair* when
    those means are tight — no user's jobs systematically starve — so the
    headline numbers are the worst user's mean and the population
    standard deviation across users.
    """

    user_count: int
    job_count: int
    mean_slowdown: float
    max_user_slowdown: float
    stddev_user_slowdown: float
    per_user: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        return {
            "user_count": self.user_count,
            "mean_slowdown": self.mean_slowdown,
            "max_user_slowdown": self.max_user_slowdown,
            "stddev_user_slowdown": self.stddev_user_slowdown,
        }

    def describe(self) -> str:
        return (
            f"fairness over {self.user_count} user(s): "
            f"mean bounded slowdown {self.mean_slowdown:.2f}, "
            f"worst user {self.max_user_slowdown:.2f}, "
            f"stddev {self.stddev_user_slowdown:.3f}"
        )


class _FairnessTally:
    """Streaming per-user (sum, count) of bounded slowdowns.

    Memory is bounded by the number of distinct users, never the number
    of jobs — safe for ``retain="metrics"`` runs.
    """

    __slots__ = ("threshold", "_sums", "_counts", "_total", "_jobs")

    def __init__(self, threshold: float = BOUNDED_SLOWDOWN_THRESHOLD):
        self.threshold = threshold
        self._sums: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}
        self._total = 0.0
        self._jobs = 0

    def add(self, outcome: JobOutcome) -> None:
        user = outcome.user if outcome.user is not None else "-"
        self.add_raw(user, bounded_slowdown(outcome, self.threshold))

    def add_raw(self, user: str, value: float) -> None:
        """Fold one precomputed bounded slowdown for ``user``."""
        self._sums[user] = self._sums.get(user, 0.0) + value
        self._counts[user] = self._counts.get(user, 0) + 1
        self._total += value
        self._jobs += 1

    def report(self) -> FairnessReport:
        if not self._jobs:
            raise SchedulingError("fairness report needs at least one outcome")
        per_user = {
            user: self._sums[user] / self._counts[user] for user in self._sums
        }
        means = list(per_user.values())
        center = sum(means) / len(means)
        variance = sum((m - center) ** 2 for m in means) / len(means)
        return FairnessReport(
            user_count=len(per_user),
            job_count=self._jobs,
            mean_slowdown=self._total / self._jobs,
            max_user_slowdown=max(means),
            stddev_user_slowdown=math.sqrt(variance),
            per_user=per_user,
        )


def compute_fairness(
    outcomes: Sequence[JobOutcome],
    threshold: float = BOUNDED_SLOWDOWN_THRESHOLD,
) -> FairnessReport:
    """Per-user bounded-slowdown fairness for a finished outcome set."""
    tally = _FairnessTally(threshold)
    for outcome in outcomes:
        tally.add(outcome)
    return tally.report()


class MetricsAccumulator:
    """Online aggregation of job outcomes into the four §4.3 metrics.

    :func:`compute_metrics` needs every outcome — and its full replica
    timeline — alive at once; for thousand-job workloads that dominates
    the simulator's memory.  The accumulator consumes outcomes one at a
    time as jobs finish and keeps only running sums, so the caller can
    drop each timeline immediately after :meth:`add`.

    The per-job busy integral is taken up to the job's own completion
    time, which matches the window-wide integral whenever the timeline
    ends at zero replicas (the simulator records a final ``(t, 0)``
    sample on completion).
    """

    def __init__(self, policy: str, total_slots: int):
        self.policy = policy
        self.total_slots = total_slots
        self.job_count = 0
        self._busy = 0.0
        self._weight = 0.0
        self._weighted_response = 0.0
        self._weighted_completion = 0.0
        self._begin = float("inf")
        self._end = float("-inf")
        self._fairness = _FairnessTally()

    def add(self, outcome: JobOutcome) -> None:
        """Fold one finished job into the running sums.

        The window/weight arithmetic is inlined (rather than delegated to
        ``validate()`` and the per-job time properties): this runs once
        per completion in streaming mode, where the extra method calls
        were measurable at trace scale.
        """
        self.add_raw(
            outcome.name,
            outcome.priority,
            outcome.submit_time,
            outcome.start_time,
            outcome.completion_time,
            outcome.timeline.slot_seconds(outcome.completion_time),
            outcome.user,
        )

    def add_raw(
        self,
        name: str,
        priority: int,
        submit: float,
        start: float,
        end: float,
        busy_slot_seconds: float,
        user: Optional[str],
    ) -> None:
        """Fold one finished job given as scalars.

        The streaming simulator path calls this directly so a trace-scale
        run never materializes a :class:`JobOutcome` per completion; the
        arithmetic (window bounds, priority-weighted sums, bounded
        slowdown) is inlined for the same reason.
        """
        if not submit <= start <= end:
            raise SchedulingError(
                f"job {name}: submit <= start <= completion violated "
                f"({submit}, {start}, {end})"
            )
        self.job_count += 1
        if start < self._begin:
            self._begin = start
        if end > self._end:
            self._end = end
        self._busy += busy_slot_seconds
        self._weight += priority
        self._weighted_response += priority * (start - submit)
        self._weighted_completion += priority * (end - submit)
        self._fairness.add_raw(
            user if user is not None else "-",
            _bounded_slowdown_scalar(
                submit, start, end, self._fairness.threshold
            ),
        )

    @property
    def busy_slot_seconds(self) -> float:
        """Integral of occupied slots so far (the utilization numerator).

        The cloud billing meter reads this to price *useful* slot-time:
        with time-varying capacity the utilization ratio alone cannot
        recover it, because the denominator is no longer a constant
        ``total_slots × duration``.
        """
        return self._busy

    def fairness(self) -> FairnessReport:
        """Per-user bounded-slowdown fairness over the outcomes so far."""
        return self._fairness.report()

    def finalize(
        self, span: Optional[Tuple[float, float]] = None
    ) -> SchedulerMetrics:
        """Produce the metrics row; the accumulator stays reusable."""
        if self.job_count == 0:
            raise SchedulingError("MetricsAccumulator has no job outcomes")
        begin, end = span if span is not None else (self._begin, self._end)
        duration = end - begin
        if duration <= 0:
            raise SchedulingError(f"degenerate measurement window [{begin}, {end}]")
        if self._weight <= 0:
            raise SchedulingError("total priority weight must be positive")
        return SchedulerMetrics(
            policy=self.policy,
            total_time=duration,
            utilization=self._busy / (self.total_slots * duration),
            weighted_mean_response=self._weighted_response / self._weight,
            weighted_mean_completion=self._weighted_completion / self._weight,
            job_count=self.job_count,
        )


def compute_metrics(
    policy: str,
    outcomes: Sequence[JobOutcome],
    total_slots: int,
    span: Optional[Tuple[float, float]] = None,
) -> SchedulerMetrics:
    """Aggregate job outcomes into the paper's four metrics.

    ``span`` overrides the measurement window; by default it runs from the
    first job start to the last completion ("start of the first job to the
    end of the last job").
    """
    if not outcomes:
        raise SchedulingError("compute_metrics needs at least one job outcome")
    for outcome in outcomes:
        outcome.validate()
    if span is None:
        begin = min(o.start_time for o in outcomes)
        end = max(o.completion_time for o in outcomes)
    else:
        begin, end = span
    duration = end - begin
    if duration <= 0:
        raise SchedulingError(f"degenerate measurement window [{begin}, {end}]")

    busy = sum(o.timeline.slot_seconds(end) for o in outcomes)
    utilization = busy / (total_slots * duration)

    weights = float(sum(o.priority for o in outcomes))
    if weights <= 0:
        raise SchedulingError("total priority weight must be positive")
    response = sum(o.priority * o.response_time for o in outcomes) / weights
    completion = sum(o.priority * o.turnaround_time for o in outcomes) / weights

    return SchedulerMetrics(
        policy=policy,
        total_time=duration,
        utilization=utilization,
        weighted_mean_response=response,
        weighted_mean_completion=completion,
        job_count=len(outcomes),
    )
