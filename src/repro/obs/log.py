"""A small structured, level-aware logger for CLI-facing progress output.

The bench harness (and any other long-running verb) used to carry its
own ad-hoc ``say()`` closures, each one a different opinion about where
progress lines go.  This module is the single shared answer: named
loggers, numeric levels, ``key=value`` structured fields, everything on
stderr so machine-readable stdout stays clean.  ``--quiet`` flags map to
:func:`set_level`; the ``REPRO_LOG_LEVEL`` environment variable sets the
process default.

Deliberately not :mod:`logging`: no handler graphs, no global config
pickling into process pools — just enough structure for a CLI.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Dict, Optional

__all__ = [
    "StructuredLogger",
    "get_logger",
    "set_level",
    "level_of",
    "DEBUG",
    "INFO",
    "WARNING",
    "ERROR",
    "LOG_ENV",
]

DEBUG = 10
INFO = 20
WARNING = 30
ERROR = 40

LOG_ENV = "REPRO_LOG_LEVEL"

_NAMES = {"debug": DEBUG, "info": INFO, "warning": WARNING, "warn": WARNING,
          "error": ERROR}
_LABELS = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}


def level_of(level) -> int:
    """Normalize a level name or number to its numeric value."""
    if isinstance(level, str):
        try:
            return _NAMES[level.strip().lower()]
        except KeyError:
            raise ValueError(f"unknown log level {level!r}") from None
    return int(level)


def _default_level() -> int:
    env = os.environ.get(LOG_ENV, "").strip()
    if env:
        try:
            return level_of(env)
        except ValueError:
            pass
    return INFO


_threshold = _default_level()


def set_level(level) -> None:
    """Set the process-wide threshold (name or number); lower = chattier."""
    global _threshold
    _threshold = level_of(level)


class StructuredLogger:
    """Writes ``... [name] message key=value`` lines to a stream.

    The stream is resolved at emit time (default ``sys.stderr``) so
    pytest's capture fixtures see the output.
    """

    def __init__(self, name: str, stream=None):
        self.name = name
        self._stream = stream

    def log(self, level: int, message: str, **fields: Any) -> None:
        if level < _threshold:
            return
        stream = self._stream if self._stream is not None else sys.stderr
        extras = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
        label = _LABELS.get(level, str(level))
        tag = f" {label}:" if level >= WARNING else ""
        print(f"...{tag} [{self.name}] {message}" + (f" {extras}" if extras else ""),
              file=stream)

    def debug(self, message: str, **fields: Any) -> None:
        self.log(DEBUG, message, **fields)

    def info(self, message: str, **fields: Any) -> None:
        self.log(INFO, message, **fields)

    def warning(self, message: str, **fields: Any) -> None:
        self.log(WARNING, message, **fields)

    def error(self, message: str, **fields: Any) -> None:
        self.log(ERROR, message, **fields)


_loggers: Dict[str, StructuredLogger] = {}


def get_logger(name: str, stream: Optional[Any] = None) -> StructuredLogger:
    """One shared :class:`StructuredLogger` per name."""
    logger = _loggers.get(name)
    if logger is None or stream is not None:
        logger = StructuredLogger(name, stream=stream)
        _loggers[name] = logger
    return logger
