"""Run provenance: who produced this artifact, from what, and at what cost.

Every bench/sweep/cloud artifact this repository emits now carries a
:class:`RunManifest` — the minimum record needed to audit a performance
trajectory across commits: the git SHA the numbers were measured on, the
workload seed and policy, a digest of the configuration that shaped the
run, wall and virtual durations, and the process's peak RSS.  The trend
dashboard (:mod:`repro.obs.dashboard`) orders artifacts by the
manifest's UTC timestamp and labels points with its SHA.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import resource
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Dict, Optional

__all__ = ["RunManifest", "git_sha", "config_digest", "MANIFEST_SCHEMA_VERSION"]

#: Bumped when manifest/BENCH document fields change shape;
#: ``compare_results`` warns (never fails) across versions.
MANIFEST_SCHEMA_VERSION = 2

_git_sha: Optional[str] = None


def git_sha() -> str:
    """The repository HEAD's short SHA, or ``"unknown"`` outside a checkout.

    Resolved once per process via ``git rev-parse`` against the package's
    own directory (artifacts may be produced from any cwd); the
    ``REPRO_GIT_SHA`` environment variable overrides — the escape hatch
    for containers shipping the source without ``.git``.
    """
    global _git_sha
    if _git_sha is None:
        sha = os.environ.get("REPRO_GIT_SHA", "").strip()
        if not sha:
            try:
                proc = subprocess.run(
                    ["git", "rev-parse", "--short=12", "HEAD"],
                    cwd=os.path.dirname(os.path.abspath(__file__)),
                    capture_output=True, text=True, timeout=10,
                )
                sha = proc.stdout.strip() if proc.returncode == 0 else ""
            except (OSError, subprocess.SubprocessError):
                sha = ""
        _git_sha = sha or "unknown"
    return _git_sha


def utc_timestamp() -> str:
    """The current instant as ISO-8601 UTC (``2026-08-08T12:00:00Z``)."""
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def config_digest(config: Any) -> str:
    """Short SHA-256 over the canonical JSON of a configuration mapping."""
    document = json.dumps(config, sort_keys=True, separators=(",", ":"),
                          default=str)
    return hashlib.sha256(document.encode()).hexdigest()[:16]


def peak_rss_kb() -> int:
    """The process's lifetime peak RSS in KiB."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@dataclass
class RunManifest:
    """Provenance attached to one produced artifact."""

    schema_version: int = MANIFEST_SCHEMA_VERSION
    git_sha: str = "unknown"
    created_utc: str = ""
    command: Optional[str] = None
    seed: Optional[int] = None
    policy: Optional[str] = None
    config_digest: Optional[str] = None
    wall_seconds: Optional[float] = None
    virtual_seconds: Optional[float] = None
    peak_rss_kb: Optional[int] = None
    python: str = ""
    machine: str = ""
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        *,
        command: Optional[str] = None,
        seed: Optional[int] = None,
        policy: Optional[str] = None,
        config: Any = None,
        wall_seconds: Optional[float] = None,
        virtual_seconds: Optional[float] = None,
        **extra: Any,
    ) -> "RunManifest":
        """Build a manifest from the current process + the run's facts."""
        return cls(
            git_sha=git_sha(),
            created_utc=utc_timestamp(),
            command=command,
            seed=seed,
            policy=policy,
            config_digest=config_digest(config) if config is not None else None,
            wall_seconds=round(wall_seconds, 6) if wall_seconds is not None else None,
            virtual_seconds=(
                round(virtual_seconds, 6) if virtual_seconds is not None else None
            ),
            peak_rss_kb=peak_rss_kb(),
            python=platform.python_version(),
            machine=platform.machine(),
            extra=dict(extra),
        )

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; ``None`` fields and empty extras are dropped."""
        out: Dict[str, Any] = {
            "schema_version": self.schema_version,
            "git_sha": self.git_sha,
            "created_utc": self.created_utc,
        }
        for key in ("command", "seed", "policy", "config_digest",
                    "wall_seconds", "virtual_seconds", "peak_rss_kb"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.python:
            out["python"] = self.python
        if self.machine:
            out["machine"] = self.machine
        if self.extra:
            out["extra"] = dict(self.extra)
        return out
