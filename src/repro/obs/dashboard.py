"""The nightly trend dashboard: BENCH artifacts → one static HTML page.

``repro obs dashboard`` scans a directory tree for ``BENCH_*.json``
documents (any ``*.json`` carrying a ``"benchmark"`` key qualifies —
the schema :mod:`repro.bench` writes), orders them by their manifest's
UTC timestamp (file mtime when a pre-manifest document has none), and
renders trend charts with no dependencies beyond the standard library:
inline SVG line charts in a self-contained HTML file the nightly
workflow uploads as an artifact.

Input layout
------------
Any nesting works; the nightly workflow keeps one subdirectory per run::

    history/
      2026-08-07-abc123/BENCH_policy_engine.json
      2026-08-07-abc123/BENCH_sweep.json
      2026-08-08-def456/BENCH_policy_engine.json
      ...

Tracked series
--------------
* ``policy_engine`` suite — normalized events/sec per gating row
  (``engine_*`` / ``simulator_*``; ``reference_*`` rows are skipped);
* ``cloud`` suite — normalized events/sec plus ``cost_per_job`` dollars
  from the spot-churn rows;
* ``sweep`` suite — trial-cache hit rate of the warm and edit re-runs.
"""

from __future__ import annotations

import html
import json
import os
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["collect_documents", "build_series", "render_dashboard",
           "write_dashboard", "DashboardError"]


class DashboardError(ValueError):
    """No usable artifacts under the input directory."""


@dataclass
class BenchDocument:
    """One discovered BENCH_*.json plus its ordering key and label."""

    path: str
    document: Dict
    timestamp: str  # ISO-8601 (manifest) or mtime-derived fallback
    git_sha: str

    @property
    def suite(self) -> str:
        return self.document.get("benchmark", "?")

    @property
    def label(self) -> str:
        return self.git_sha[:8] if self.git_sha != "unknown" else self.timestamp[:10]


@dataclass
class Series:
    """One metric's trajectory across runs."""

    title: str
    unit: str
    points: List[Tuple[str, float]] = field(default_factory=list)  # (label, y)

    def add(self, label: str, value: float) -> None:
        self.points.append((label, float(value)))


def collect_documents(root: str) -> List[BenchDocument]:
    """Every parseable benchmark document under ``root``, oldest first.

    A nightly-history directory accumulates artifacts from interrupted
    runs — truncated JSON, half-written files, stray non-bench JSON.
    Corrupt documents are *warned about and skipped* (never fatal): one
    bad artifact must not take down the whole trend page.
    """
    found: List[BenchDocument] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for name in sorted(filenames):
            if not name.endswith(".json"):
                continue
            path = os.path.join(dirpath, name)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    document = json.load(handle)
            except (OSError, ValueError) as exc:
                warnings.warn(
                    f"skipping bench artifact {path}: {exc}",
                    RuntimeWarning, stacklevel=2,
                )
                continue
            if not isinstance(document, dict) or "benchmark" not in document:
                # Not a bench document at all (other tooling's JSON
                # living in the same tree) — quietly irrelevant.
                continue
            manifest = document.get("manifest") or {}
            if not isinstance(manifest, dict):
                warnings.warn(
                    f"skipping bench artifact {path}: manifest is "
                    f"{type(manifest).__name__}, expected an object",
                    RuntimeWarning, stacklevel=2,
                )
                continue
            timestamp = manifest.get("created_utc", "")
            if not isinstance(timestamp, str):
                timestamp = ""  # a garbage timestamp must not break sort
            if not timestamp:
                try:
                    from datetime import datetime, timezone

                    timestamp = datetime.fromtimestamp(
                        os.stat(path).st_mtime, tz=timezone.utc
                    ).strftime("%Y-%m-%dT%H:%M:%SZ")
                except OSError:
                    timestamp = "1970-01-01T00:00:00Z"
            found.append(BenchDocument(
                path=path,
                document=document,
                timestamp=timestamp,
                git_sha=str(manifest.get("git_sha", "unknown")),
            ))
    found.sort(key=lambda d: (d.timestamp, d.path))
    return found


def _numeric(value: object) -> Optional[float]:
    """``value`` as a float, or ``None`` for anything non-numeric.

    Bools are rejected explicitly (they are ints to ``isinstance`` but a
    ``"normalized": true`` in a mangled artifact is garbage, not a 1.0).
    """
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def build_series(documents: Sequence[BenchDocument]) -> List[Series]:
    """Fold the discovered documents into per-metric trend series.

    Row values that are not plain numbers (a truncated write, a hand-
    edited artifact) are skipped per-point: the series keeps its other
    runs rather than the page crashing.
    """
    table: Dict[Tuple[str, str, str], Series] = {}

    def series(key: Tuple[str, str, str], title: str, unit: str) -> Series:
        entry = table.get(key)
        if entry is None:
            entry = table[key] = Series(title=title, unit=unit)
        return entry

    def add(key: Tuple[str, str, str], title: str, unit: str,
            label: str, raw: object) -> None:
        value = _numeric(raw)
        if value is None:
            warnings.warn(
                f"skipping non-numeric {key[2]} value {raw!r} in "
                f"{key[0]}/{key[1]}", RuntimeWarning, stacklevel=3,
            )
            return
        series(key, title, unit).add(label, value)

    for doc in documents:
        suite = doc.suite
        results = doc.document.get("results", {})
        if not isinstance(results, dict):
            continue
        for row_key, row in sorted(results.items()):
            if not isinstance(row, dict):
                continue
            if suite == "sweep":
                if "hit_rate" in row and not row.get("informational"):
                    add((suite, row_key, "hit_rate"),
                        f"{row_key} cache hit rate", "hit rate",
                        doc.label, row["hit_rate"])
                continue
            if row_key.startswith("reference_"):
                continue
            if "normalized" in row:
                add((suite, row_key, "normalized"),
                    f"{row_key} throughput", "normalized ev/s",
                    doc.label, row["normalized"])
            if "cost_per_job" in row:
                add((suite, row_key, "cost_per_job"),
                    f"{row_key} cost", "$/job",
                    doc.label, row["cost_per_job"])
    return [table[key] for key in sorted(table)]


# ----------------------------------------------------------------------
# SVG rendering (no dependencies: hand-rolled polyline charts)
# ----------------------------------------------------------------------

_W, _H = 640, 220
_PAD_L, _PAD_R, _PAD_T, _PAD_B = 56, 16, 18, 40


def _svg_chart(series: Series) -> str:
    points = series.points
    n = len(points)
    ys = [y for _, y in points]
    lo, hi = min(ys), max(ys)
    if hi == lo:
        lo, hi = lo - (abs(lo) * 0.1 or 0.5), hi + (abs(hi) * 0.1 or 0.5)
    span_x = _W - _PAD_L - _PAD_R
    span_y = _H - _PAD_T - _PAD_B

    def sx(i: int) -> float:
        return _PAD_L + (span_x * i / (n - 1) if n > 1 else span_x / 2)

    def sy(y: float) -> float:
        return _PAD_T + span_y * (1.0 - (y - lo) / (hi - lo))

    parts = [
        f'<svg viewBox="0 0 {_W} {_H}" role="img" '
        f'aria-label="{html.escape(series.title)}">',
        f'<rect x="{_PAD_L}" y="{_PAD_T}" width="{span_x}" height="{span_y}" '
        'class="plot"/>',
    ]
    # Horizontal gridlines + y tick labels at min/mid/max.
    for frac in (0.0, 0.5, 1.0):
        value = lo + (hi - lo) * frac
        y = sy(value)
        parts.append(f'<line x1="{_PAD_L}" y1="{y:.1f}" '
                     f'x2="{_W - _PAD_R}" y2="{y:.1f}" class="grid"/>')
        parts.append(f'<text x="{_PAD_L - 6}" y="{y + 4:.1f}" '
                     f'class="tick" text-anchor="end">{value:.4g}</text>')
    coords = " ".join(f"{sx(i):.1f},{sy(y):.1f}" for i, (_, y) in enumerate(points))
    if n > 1:
        parts.append(f'<polyline points="{coords}" class="line"/>')
    for i, (label, y) in enumerate(points):
        parts.append(f'<circle cx="{sx(i):.1f}" cy="{sy(y):.1f}" r="3.5" '
                     f'class="dot"><title>{html.escape(label)}: {y:.6g}'
                     '</title></circle>')
    # x labels: first, last, and every point while they fit.
    step = max(1, (n + 7) // 8)
    for i, (label, _) in enumerate(points):
        if i % step and i != n - 1:
            continue
        parts.append(f'<text x="{sx(i):.1f}" y="{_H - _PAD_B + 16}" '
                     f'class="tick" text-anchor="middle">'
                     f'{html.escape(label)}</text>')
    parts.append(f'<text x="{_PAD_L}" y="{_H - 6}" class="unit">'
                 f'{html.escape(series.unit)}</text>')
    parts.append("</svg>")
    return "".join(parts)


_STYLE = """
body { font: 14px/1.5 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; padding: 0 1rem;
       color: #1a202c; background: #fafafa; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.05rem; margin: 1.6rem 0 .4rem; }
.meta { color: #718096; font-size: .85rem; }
.grid-cards { display: grid; gap: 1.2rem;
              grid-template-columns: repeat(auto-fill, minmax(21rem, 1fr)); }
.card { background: #fff; border: 1px solid #e2e8f0; border-radius: 8px;
        padding: .8rem 1rem; }
.card .delta { font-size: .85rem; color: #4a5568; }
.card .delta.up { color: #2f855a; } .card .delta.down { color: #c53030; }
svg { width: 100%; height: auto; display: block; }
svg .plot { fill: #fff; stroke: none; }
svg .grid { stroke: #edf2f7; stroke-width: 1; }
svg .line { fill: none; stroke: #3182ce; stroke-width: 2; }
svg .dot { fill: #3182ce; }
svg .tick { font-size: 10px; fill: #a0aec0; }
svg .unit { font-size: 10px; fill: #718096; }
table { border-collapse: collapse; width: 100%; font-size: .85rem; }
th, td { text-align: left; padding: .3rem .6rem;
         border-bottom: 1px solid #e2e8f0; }
th { color: #718096; font-weight: 600; }
"""


def render_dashboard(root: str, title: str = "repro nightly trends") -> str:
    """Scan ``root`` and render the full trend page as an HTML string."""
    documents = collect_documents(root)
    if not documents:
        raise DashboardError(
            f"no BENCH_*.json benchmark documents found under {root!r}"
        )
    all_series = build_series(documents)
    runs = sorted({(d.timestamp, d.git_sha) for d in documents})

    from .manifest import git_sha, utc_timestamp

    cards = []
    for series in all_series:
        latest = series.points[-1][1]
        delta_html = ""
        if len(series.points) > 1:
            previous = series.points[-2][1]
            if previous:
                change = 100.0 * (latest - previous) / abs(previous)
                cls = "up" if change >= 0 else "down"
                delta_html = (f'<div class="delta {cls}">'
                              f'{change:+.1f}% vs previous run</div>')
        cards.append(
            '<div class="card">'
            f"<h2>{html.escape(series.title)}</h2>"
            f'<div class="meta">latest: {latest:.6g} {html.escape(series.unit)}'
            f"</div>{delta_html}{_svg_chart(series)}</div>"
        )

    run_rows = "".join(
        f"<tr><td>{html.escape(ts)}</td><td><code>{html.escape(sha)}</code>"
        "</td></tr>"
        for ts, sha in runs
    )
    doc_rows = "".join(
        f"<tr><td>{html.escape(d.suite)}</td>"
        f"<td>{html.escape(os.path.relpath(d.path, root))}</td>"
        f"<td>{html.escape(d.timestamp)}</td>"
        f"<td><code>{html.escape(d.git_sha)}</code></td></tr>"
        for d in documents
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>{html.escape(title)}</h1>
<p class="meta">{len(documents)} artifacts across {len(runs)} runs ·
generated {utc_timestamp()} at <code>{git_sha()}</code></p>
<div class="grid-cards">
{''.join(cards)}
</div>
<h2>Artifacts</h2>
<table>
<tr><th>suite</th><th>file</th><th>timestamp</th><th>git sha</th></tr>
{doc_rows}
</table>
<h2>Runs</h2>
<table>
<tr><th>timestamp</th><th>git sha</th></tr>
{run_rows}
</table>
</body>
</html>
"""


def write_dashboard(root: str, output: str,
                    title: str = "repro nightly trends") -> int:
    """Render ``root``'s trend page into ``output``; returns #artifacts."""
    documents = collect_documents(root)
    if not documents:
        raise DashboardError(
            f"no BENCH_*.json benchmark documents found under {root!r}"
        )
    page = render_dashboard(root, title=title)
    with open(output, "w", encoding="utf-8") as handle:
        handle.write(page)
    return len(documents)
