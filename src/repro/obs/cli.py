"""The ``repro obs`` CLI verbs: trace export and the trend dashboard.

``repro obs export-trace`` runs one instrumented workload — the plain
§4.3.1 simulator, or the autoscaled cloud substrate with ``--cloud`` —
with a tracer attached, and writes the Chrome-trace/Perfetto JSON that
https://ui.perfetto.dev loads directly.  ``repro obs dashboard`` renders
the static-HTML trend page from a directory of nightly BENCH artifacts.
"""

from __future__ import annotations

import json
import time

from .dashboard import write_dashboard
from .log import get_logger
from .manifest import RunManifest
from .perfetto import to_chrome_trace

__all__ = ["main_obs"]

DEFAULT_TRACE_OUTPUT = "trace.json"
DEFAULT_DASHBOARD_OUTPUT = "dashboard.html"

log = get_logger("repro.obs")


def _export_trace(args) -> int:
    from ..scheduling.registry import REGISTRY
    from ..sim import Engine, Tracer

    output = args.output or DEFAULT_TRACE_OUTPUT
    begin = time.perf_counter()
    if args.cloud:
        from ..cloud.sweep import run_cloud_once

        log.info("tracing cloud run", jobs=args.jobs, policy=args.policy,
                 autoscaler=args.autoscaler)
        tracer = Tracer(None)  # the simulator binds its engine
        run_cloud_once(
            args.policy, args.autoscaler,
            submission_gap=args.gap, rescale_gap=args.rescale_gap,
            seed=args.seed, num_jobs=args.jobs, retain="metrics",
            tracer=tracer,
        )
        engine = tracer.engine
    else:
        from ..schedsim import ScheduleSimulator, WorkloadSpec, generate_workload

        log.info("tracing simulator run", jobs=args.jobs, policy=args.policy)
        engine = Engine()
        tracer = Tracer(engine)
        simulator = ScheduleSimulator(
            REGISTRY.resolve(args.policy, rescale_gap=args.rescale_gap),
            total_slots=args.slots,
            engine=engine,
            tracer=tracer,
        )
        spec = WorkloadSpec(
            num_jobs=args.jobs, submission_gap=args.gap, seed=args.seed
        )
        simulator.run(generate_workload(spec), retain="metrics")
    wall = time.perf_counter() - begin
    manifest = RunManifest.collect(
        command=f"obs export-trace --jobs {args.jobs} --policy {args.policy}",
        seed=args.seed,
        policy=args.policy,
        config={
            "jobs": args.jobs, "gap": args.gap,
            "rescale_gap": args.rescale_gap, "slots": args.slots,
            "cloud": args.cloud,
        },
        wall_seconds=wall,
        virtual_seconds=engine.now if engine is not None else None,
    )
    document = to_chrome_trace(tracer.records, manifest=manifest.as_dict())
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    events = len(document["traceEvents"])
    spans = sum(1 for e in document["traceEvents"] if e.get("ph") == "B")
    print(f"exported {events} trace events ({spans} spans, "
          f"{len(tracer.records)} records) to {output}")
    print("open it at https://ui.perfetto.dev or chrome://tracing")
    return 0


def _dashboard(args) -> int:
    import sys

    root = args.input if args.input is not None else "."
    output = args.output or DEFAULT_DASHBOARD_OUTPUT
    from .dashboard import DashboardError

    try:
        count = write_dashboard(root, output, title=args.title)
    except DashboardError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(f"dashboard rendered from {count} artifacts under {root} "
          f"to {output}")
    return 0


def main_obs(args) -> int:
    """Entry point for the ``repro obs`` CLI verb."""
    if args.action == "dashboard":
        return _dashboard(args)
    return _export_trace(args)
