"""Counters, gauges, and histograms with a no-op fast path when disabled.

The observability contract of this repository is *zero overhead when
off*: the blocking bench gates (``simulator_100000`` and friends) run
with telemetry disabled, so instrumented components must cost nothing
measurable there.  The design that achieves it:

* Components fetch their instruments **once, at construction**, from the
  process-wide active registry (:func:`active_registry`).  A disabled
  registry hands out shared null instruments — or, for hot paths that
  guard with ``if self._obs is not None``, the component stores ``None``
  and the instrumented branch never executes.
* The null instruments are module-level singletons with empty
  ``__slots__``: a disabled histogram allocates **no bucket storage**
  (the property test in ``tests/obs`` pins this).
* Enabling is explicit (:func:`enable`, or the ``REPRO_OBS``
  environment variable) and must happen *before* the components under
  observation are constructed — binding at ``__init__`` is exactly what
  keeps the disabled path branch-free.

Instrument names are dotted (``engine.redistribute_calls``,
``sim.cohort_size``); :meth:`MetricsRegistry.snapshot` flattens the
registry into one plain dict for reports and tests.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "enable",
    "disable",
    "OBS_ENV",
]

#: Environment toggle: any value other than empty/``0``/``off`` enables a
#: fresh registry for the whole process at import time.
OBS_ENV = "REPRO_OBS"

#: Default histogram bucket upper bounds (seconds-ish scale); callers
#: instrumenting counts pass their own.
_DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 1.0, 10.0, 60.0, 300.0, 3600.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A last-value-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n


class Histogram:
    """Fixed-bucket distribution: counts per upper bound plus summary stats.

    ``bounds`` are inclusive upper bounds in increasing order; one
    overflow bucket catches everything above the last bound.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, name: str, buckets: Sequence[float] = _DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram buckets must strictly increase: {buckets!r}")
        self.name = name
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict:
        return {
            "count": self.count,
            "mean": round(self.mean, 6),
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": dict(zip([*map(str, self.bounds), "+inf"], self.bucket_counts)),
        }


class _NullCounter:
    """Shared do-nothing counter (also serves as the null gauge)."""

    __slots__ = ()
    name = ""
    value = 0

    def inc(self, n: int = 1) -> None:
        return

    def set(self, value: float) -> None:
        return


class _NullHistogram:
    """Shared do-nothing histogram; allocates no bucket storage."""

    __slots__ = ()
    name = ""
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        return

    def as_dict(self) -> Dict:
        return {"count": 0}


NULL_COUNTER = _NullCounter()
NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """A named collection of instruments, or a no-op stand-in.

    A disabled registry (``MetricsRegistry(enabled=False)``) returns the
    shared null instruments from every accessor, registers nothing, and
    snapshots empty — the module-level default, so an uninstrumented
    process never pays for telemetry it did not ask for.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = bool(enabled)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, buckets: Sequence[float] = _DEFAULT_BUCKETS) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, buckets)
        return instrument

    # ------------------------------------------------------------------

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, object]:
        """Every instrument's current value, flattened to one dict.

        ``prefix`` keeps only dotted names starting with it — e.g.
        ``snapshot("faults.")`` isolates the fault-injection counters
        for a report without copying the whole registry.
        """
        out: Dict[str, object] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.value
        for name, hist in self._histograms.items():
            out[name] = hist.as_dict()
        if prefix is not None:
            out = {k: v for k, v in out.items() if k.startswith(prefix)}
        return out

    def format_lines(self) -> list:
        """Human-readable ``name = value`` lines, sorted by name."""
        lines = []
        for name, value in sorted(self.snapshot().items()):
            if isinstance(value, dict):
                mean = value.get("mean", 0.0)
                lines.append(f"{name} = n={value['count']} mean={mean}")
            else:
                lines.append(f"{name} = {value}")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        n = len(self._counters) + len(self._gauges) + len(self._histograms)
        return f"<MetricsRegistry {state}, {n} instruments>"


#: The process-wide disabled default; :func:`enable` swaps it out.
_DISABLED = MetricsRegistry(enabled=False)
_active = _DISABLED


def active_registry() -> MetricsRegistry:
    """The registry components bind their instruments from at ``__init__``."""
    return _active


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) an enabled registry as the process-wide active one.

    Must be called before constructing the components to observe: the
    zero-overhead contract binds instruments at construction time.
    """
    global _active
    _active = registry if registry is not None else MetricsRegistry(enabled=True)
    return _active


def disable() -> None:
    """Restore the shared disabled registry (the no-op fast path)."""
    global _active
    _active = _DISABLED


if os.environ.get(OBS_ENV, "").strip().lower() not in ("", "0", "off", "none"):
    enable()
