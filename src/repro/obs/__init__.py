"""repro.obs — the zero-overhead-when-off observability layer.

Four pieces, one contract:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters/gauges/histograms.  Disabled by default; components bind
  their instruments at construction, so the uninstrumented hot paths
  stay branch-free (the blocking bench gates prove it).
* :mod:`repro.obs.spans` / :mod:`repro.obs.perfetto` — span-style phase
  timing over the existing :class:`repro.sim.trace.Tracer`, exported as
  Chrome-trace/Perfetto JSON (``repro obs export-trace``).
* :mod:`repro.obs.manifest` — :class:`RunManifest` provenance (git SHA,
  seed, policy, config digest, wall/virtual time, peak RSS) attached to
  every bench/sweep/cloud artifact.
* :mod:`repro.obs.dashboard` — the static-HTML trend report the nightly
  workflow publishes (``repro obs dashboard``).

Import discipline: this ``__init__`` pulls in only the dependency-free
core (metrics, log, manifest) because :mod:`repro.sim.engine` imports
``repro.obs.metrics`` — anything here that imported ``repro.sim`` back
would cycle.  Spans, perfetto, and the dashboard are explicit submodule
imports for the same reason.
"""

from .log import StructuredLogger, get_logger, set_level
from .manifest import RunManifest, config_digest, git_sha
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    disable,
    enable,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "enable",
    "disable",
    "StructuredLogger",
    "get_logger",
    "set_level",
    "RunManifest",
    "git_sha",
    "config_digest",
]
