"""Span-style phase timing over the existing trace substrate.

:class:`PhaseSpans` turns a :class:`repro.sim.trace.Tracer` into a
begin/end span recorder: every span emits two trace records in the
``obs.span.<phase>`` category carrying a Chrome-trace phase marker
(``ph="B"`` / ``ph="E"``) and a **wall-clock** offset (seconds since the
recorder was created).  Records still get the engine's virtual timestamp
like every other trace record, so one trace file tells both stories: how
long a phase took on the wall, and where in simulated time it happened.
:mod:`repro.obs.perfetto` converts the pairs into Trace Event Format
JSON a real timeline viewer loads.

The tracer is duck-typed (anything with ``emit(category, message,
**fields)``) so this module never imports :mod:`repro.sim` — keeping
``repro.obs`` importable from the sim core without a cycle.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any

__all__ = ["PhaseSpans", "SPAN_CATEGORY_PREFIX"]

#: Category prefix identifying span records in a trace stream.
SPAN_CATEGORY_PREFIX = "obs.span"


class PhaseSpans:
    """Emit paired B/E span records for named phases into a tracer.

    Spans of the same phase must not overlap (the simulators' event
    handlers are sequential, so they never do); distinct phases may nest
    freely — ``redistribute`` fires inside ``complete``.
    """

    __slots__ = ("tracer", "_clock", "_t0")

    def __init__(self, tracer, clock=time.perf_counter):
        self.tracer = tracer
        self._clock = clock
        self._t0 = clock()

    def begin(self, phase: str, **fields: Any) -> None:
        self.tracer.emit(
            f"{SPAN_CATEGORY_PREFIX}.{phase}", phase,
            ph="B", wall=self._clock() - self._t0, **fields,
        )

    def end(self, phase: str, **fields: Any) -> None:
        self.tracer.emit(
            f"{SPAN_CATEGORY_PREFIX}.{phase}", phase,
            ph="E", wall=self._clock() - self._t0, **fields,
        )

    @contextmanager
    def span(self, phase: str, **fields: Any):
        self.begin(phase, **fields)
        try:
            yield
        finally:
            self.end(phase)
