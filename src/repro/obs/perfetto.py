"""Chrome-trace / Perfetto export of a recorded trace stream.

:func:`to_chrome_trace` converts a list of trace records (anything with
``time``/``category``/``message``/``fields`` — duck-typed, so this
module never imports :mod:`repro.sim`) into the Trace Event Format JSON
object that ``chrome://tracing`` and https://ui.perfetto.dev load
directly:

* **span records** (category ``obs.span.*`` with a ``ph`` field, emitted
  by :class:`repro.obs.spans.PhaseSpans`) become paired ``B``/``E``
  duration events on the *wall clock* process, one thread lane per phase
  — a 100k-job run's submit/redistribute/complete phases render as real
  nested intervals;
* **every other record** (``cloud.node.*``, ``cloud.autoscale`` …)
  becomes an instant event on the *virtual time* process, one lane per
  category, timestamped with the engine clock.

Timestamps are microseconds.  The ``pid``/``tid`` assignment is
deterministic: lanes are numbered in sorted name order and named via
``M`` metadata events, so two exports of the same run are structurally
identical (the round-trip test pins this).  Events are emitted in
non-decreasing ``ts`` order per process block; the stable sort keeps a
``B`` before its ``E`` when both carry the same timestamp.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from .spans import SPAN_CATEGORY_PREFIX

__all__ = ["to_chrome_trace", "write_chrome_trace"]

#: Synthetic process ids: wall-clock span lanes vs virtual-time events.
WALL_PID = 1
VIRTUAL_PID = 2

_SPAN_PREFIX = SPAN_CATEGORY_PREFIX + "."


def _metadata(pid: int, tid: Optional[int], name: str) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "name": "process_name" if tid is None else "thread_name",
        "ph": "M",
        "pid": pid,
        "tid": 0 if tid is None else tid,
        "ts": 0,
        "args": {"name": name},
    }
    return event


def to_chrome_trace(
    records: Iterable,
    manifest: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Convert trace records to a Trace Event Format JSON object.

    ``manifest`` (a :meth:`~repro.obs.manifest.RunManifest.as_dict`
    mapping) rides along under ``otherData`` so the trace file carries
    its own provenance.
    """
    spans: List[tuple] = []  # (wall_us, phase, ph, args)
    instants: List[tuple] = []  # (virtual_us, category, message, args)
    for record in records:
        fields = record.fields
        category = record.category
        if category.startswith(_SPAN_PREFIX) and "ph" in fields:
            args = {k: v for k, v in fields.items() if k not in ("ph", "wall")}
            wall_us = fields["wall"] * 1e6
            spans.append((wall_us, category[len(_SPAN_PREFIX):],
                          fields["ph"], args))
        else:
            args = dict(fields)
            args["message"] = record.message
            instants.append((record.time * 1e6, category, record.message, args))

    span_tids = {name: i + 1
                 for i, name in enumerate(sorted({s[1] for s in spans}))}
    instant_tids = {name: i + 1
                    for i, name in enumerate(sorted({r[1] for r in instants}))}

    events: List[Dict[str, Any]] = [_metadata(WALL_PID, None, "repro wall clock")]
    for phase, tid in span_tids.items():
        events.append(_metadata(WALL_PID, tid, phase))
    events.append(_metadata(VIRTUAL_PID, None, "repro virtual time"))
    for category, tid in instant_tids.items():
        events.append(_metadata(VIRTUAL_PID, tid, category))

    # Stable sorts: emission order breaks ts ties, keeping B before E.
    spans.sort(key=lambda s: s[0])
    instants.sort(key=lambda r: r[0])
    for wall_us, phase, ph, args in spans:
        event: Dict[str, Any] = {
            "name": phase,
            "cat": "span",
            "ph": ph,
            "ts": wall_us,
            "pid": WALL_PID,
            "tid": span_tids[phase],
        }
        if args:
            event["args"] = args
        events.append(event)
    for virtual_us, category, message, args in instants:
        events.append({
            "name": message,
            "cat": category,
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": virtual_us,
            "pid": VIRTUAL_PID,
            "tid": instant_tids[category],
            "args": args,
        })

    document: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if manifest is not None:
        document["otherData"] = {"manifest": manifest}
    return document


def write_chrome_trace(
    records: Iterable,
    path: str,
    manifest: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Export ``records`` to ``path``; returns the written document."""
    document = to_chrome_trace(records, manifest=manifest)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return document
