#!/usr/bin/env python
"""Elastic cluster capacity: autoscaling, spot interruptions, and cost.

Runs the paper's elastic scheduling policy on three fleets — a fixed
cluster, a demand-driven autoscaler, and an autoscaled fleet with a spot
pool that gets interrupted — and prints the §4.3 metrics next to what
each run *cost*.

Run:  python examples/cloud_autoscaler_demo.py
"""

from repro.cloud import CloudScenario, run_cloud_once
from repro.schedsim import WorkloadSpec, generate_workload

SEED = 18
JOBS = 20
GAP = 30.0


def show(title: str, result) -> None:
    print(f"--- {title}")
    print(result.describe())
    peak = max(slots for _, slots in result.capacity.samples)
    print(f"    capacity: {len(result.capacity.samples)} change-points, "
          f"peak {peak} slots, {result.cost.interruptions} interruptions\n")


def main() -> None:
    workload = generate_workload(
        WorkloadSpec(num_jobs=JOBS, submission_gap=GAP, seed=SEED)
    )
    print(f"# {len(workload)} jobs, one every {GAP:.0f}s (seed {SEED})\n")

    # 1. The fixed 64-slot cluster every earlier layer assumed.
    show("static 4-node fleet", run_cloud_once(
        "elastic", "static",
        CloudScenario(initial_nodes=4, min_nodes=4, max_nodes=4),
        submission_gap=GAP, seed=SEED, num_jobs=JOBS,
    ))

    # 2. Start with one node; let queue pressure buy more (and a
    #    300s cool-down give them back).
    show("queue-driven autoscaler (1..8 nodes)", run_cloud_once(
        "elastic", "queue",
        CloudScenario(initial_nodes=1, min_nodes=1, max_nodes=8),
        submission_gap=GAP, seed=SEED, num_jobs=JOBS,
    ))

    # 3. Add a cheap spot pool with a ~20-minute mean lifetime: jobs
    #    get evicted mid-run, restarted, and still finish — for less
    #    money per busy slot-hour if the weather cooperates.
    show("autoscaled + interruptible spot pool", run_cloud_once(
        "elastic", "queue",
        CloudScenario(initial_nodes=2, min_nodes=2, max_nodes=4,
                      spot_nodes=2, spot_mean_lifetime=1200.0),
        submission_gap=GAP, seed=SEED, num_jobs=JOBS,
    ))


if __name__ == "__main__":
    main()
