#!/usr/bin/env python
"""Fault tolerance (§3.2.2): node failure, restart from disk checkpoint.

A job runs on the cluster while periodically checkpointing its chare state
to a shared filesystem.  Mid-run a node "fails" (all its pods die); the
operator notices, relaunches the job with the restart parameter, and the
application resumes from its last checkpoint instead of from scratch.

Run:  python examples/fault_tolerance_demo.py
"""

from repro.apps import ModeledApp, ModeledAppConfig
from repro.charm import DiskCheckpointStore
from repro.k8s import make_eks_cluster
from repro.mpioperator import (
    AppSpec,
    CharmJob,
    CharmJobController,
    CharmJobSpec,
    JobPhase,
    WorkerSpec,
)
from repro.sim import Engine


def main() -> None:
    engine = Engine()
    cluster = make_eks_cluster(engine, node_count=2)
    store = DiskCheckpointStore()

    def app_factory(job: CharmJob) -> ModeledApp:
        config = ModeledAppConfig(
            name=f"ft-{job.name}",
            total_steps=2000,
            step_time=lambda p: 0.4 / p,
            data_bytes=64 * 1024**2,
            chares=16,
        )
        return ModeledApp(
            config, ft_store=store, disk_checkpoint_every=200,
        )

    operator = CharmJobController(
        engine, cluster, app_factory=app_factory,
        restart_failed_jobs=True, max_restarts=3,
    )
    job = CharmJob(
        "resilient",
        CharmJobSpec(
            min_replicas=4, max_replicas=8, replicas=8, priority=3,
            worker=WorkerSpec.parse(cpu="1", memory="1Gi", shm="1Gi"),
            app=AppSpec(name="ft-demo"),
        ),
    )
    operator.submit(job)

    engine.run(until=60.0)
    runner = operator.runner_for(job)
    print(f"[{engine.now:7.1f}s] job running on {runner.rts.num_pes} PEs, "
          f"{runner.app.completed_steps} steps done, "
          f"{store.writes} disk checkpoints written")

    victim_node = runner.rts.pes[0].node_name
    print(f"[{engine.now:7.1f}s] !!! node {victim_node} fails "
          f"({len(cluster.nodes[victim_node].pod_keys)} pods killed)")
    cluster.fail_node(victim_node)
    engine.run(until=engine.now + 5.0)
    print(f"[{engine.now:7.1f}s] job phase: {job.status.phase.value} "
          f"({job.status.message})")

    # Bring the node back (e.g. the cloud provider replaces the instance).
    engine.run(until=engine.now + 10.0)
    cluster.uncordon_node(victim_node)
    print(f"[{engine.now:7.1f}s] node {victim_node} replaced; "
          "operator restarts the job with the restart parameter")

    engine.run(until=100_000.0)
    new_runner = operator.runner_for(job)
    app = new_runner.app
    print(f"[{engine.now:7.1f}s] job phase: {job.status.phase.value}")
    print(f"  restart count: {job.meta.annotations['repro.dev/restart-count']}")
    print(f"  resumed from iteration {app.restored_from_step} "
          f"(not from 0 — the checkpoint saved "
          f"{app.restored_from_step / 2000:.0%} of the work)")
    print(f"  completed {app.completed_steps}/2000 iterations")
    assert job.status.phase == JobPhase.COMPLETED


if __name__ == "__main__":
    main()
