#!/usr/bin/env python
"""Shrink/expand a *real* Jacobi solve without losing a single bit.

This is the §2.2 mechanism demo: a 2D heat-equation solve runs on chares
over 6 PEs; mid-run a CCS client shrinks it to 2 PEs and later expands it
back.  The application state crosses each rescale through a genuine
pickle-to-shared-memory checkpoint, and the final grid is compared
bit-for-bit against a serial numpy reference.

Run:  python examples/jacobi_rescale_demo.py
"""

import numpy as np

from repro.apps.jacobi2d import Jacobi2D, JacobiConfig, jacobi_reference
from repro.charm import CcsClient, CcsServer, CharmRuntime
from repro.sim import Engine


def main() -> None:
    config = JacobiConfig(n=64, blocks=4, steps=240, compute_per_point=2e-6)
    engine = Engine()
    rts = CharmRuntime(engine, num_pes=6)
    app = Jacobi2D(config)

    server = CcsServer(engine)
    app.attach_ccs(server)
    client = CcsClient(engine, server)
    engine.process(app.main(rts), name="jacobi")

    def controller():
        # Let it run a while, shrink to 2 PEs, run, expand back to 6.
        while app.completed_steps < 80:
            yield 0.05
        print(f"[{engine.now:8.3f}s] requesting shrink 6 -> 2 "
              f"(at iteration {app.completed_steps})")
        reply = yield client.request("rescale", {"target": 2})
        print(f"[{engine.now:8.3f}s] shrink ack: now {reply['replicas']} PEs; "
              f"stages: " + ", ".join(f"{k}={v * 1e3:.1f}ms"
                                      for k, v in reply["stages"].items()))
        while app.completed_steps < 160:
            yield 0.05
        print(f"[{engine.now:8.3f}s] requesting expand 2 -> 6")
        reply = yield client.request("rescale", {"target": 6})
        print(f"[{engine.now:8.3f}s] expand ack: now {reply['replicas']} PEs")

    engine.process(controller(), name="controller")
    engine.run()

    solution = app.solution(rts)
    reference = jacobi_reference(config, config.steps)
    identical = np.array_equal(solution, reference)
    print(f"\ncompleted {app.completed_steps} iterations on {rts.num_pes} PEs")
    print(f"final residual: {app.residual:.3e}")
    print(f"rescales performed: {[r.kind for r in app.rescale_reports]}")
    print(f"solution identical to serial reference: {identical}")
    if not identical:
        raise SystemExit("state was corrupted by the rescale!")

    print("\nper-10-iteration pace (slower while on 2 PEs):")
    for iteration, seconds in app.block_durations()[::4]:
        bar = "#" * int(seconds * 400)
        print(f"  iter {iteration:4d}: {seconds * 1e3:7.1f} ms {bar}")


if __name__ == "__main__":
    main()
