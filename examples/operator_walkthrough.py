#!/usr/bin/env python
"""Low-level walkthrough of the Charm++ operator (§3.1).

Shows the operator machinery without any scheduling policy: a CharmJob is
created, the controller spins up the launcher and worker pods and the
nodelist ConfigMap, the application starts, and then — exactly like
editing the deployment YAML — we patch ``spec.replicas`` and watch the
shrink protocol run (CCS signal, application ack, pod deletion, nodelist
update).

Run:  python examples/operator_walkthrough.py
"""

from repro.apps import make_app_factory
from repro.k8s import make_eks_cluster
from repro.mpioperator import (
    AppSpec,
    CharmJob,
    CharmJobController,
    CharmJobSpec,
    WorkerSpec,
    read_nodelist,
)
from repro.sim import Engine


def show_pods(cluster, when: str) -> None:
    pods = cluster.pods()
    print(f"  pods ({when}):")
    for pod in pods:
        print(f"    {pod.name:<28} {pod.spec.role:<9} {pod.phase.value:<9} "
              f"node={pod.node_name}")
    if not pods:
        print("    (none)")


def main() -> None:
    engine = Engine()
    cluster = make_eks_cluster(engine, node_count=2)
    operator = CharmJobController(engine, cluster, app_factory=make_app_factory())

    job = CharmJob(
        "demo",
        CharmJobSpec(
            min_replicas=2,
            max_replicas=8,
            replicas=6,
            priority=3,
            worker=WorkerSpec.parse(cpu="1", memory="1Gi", shm="1Gi"),
            app=AppSpec(name="modeled", params={"size_class": "medium"}),
        ),
    )
    print("== submitting CharmJob 'demo' (replicas=6) ==")
    operator.submit(job)
    engine.run(until=15.0)
    show_pods(cluster, "after launch")
    print(f"  nodelist: {read_nodelist(cluster.api, job)}")
    runner = operator.runner_for(job)
    print(f"  application running on {runner.rts.num_pes} PEs, "
          f"phase={job.status.phase.value}")

    print("\n== patching spec.replicas 6 -> 3 (what the scheduler does) ==")
    cluster.api.patch(job, lambda j: setattr(j.spec, "replicas", 3))
    engine.run(until=engine.now + 60.0)
    show_pods(cluster, "after shrink")
    print(f"  nodelist: {read_nodelist(cluster.api, job)}")
    print(f"  application now on {runner.rts.num_pes} PEs; "
          f"rescales so far: {job.status.rescale_count}")
    print(f"  rescale stage costs: "
          + ", ".join(f"{k}={v:.3f}s" for k, v in
                      runner.app.rescale_reports[-1].row().items()))

    print("\n== patching spec.replicas 3 -> 8 (expand) ==")
    cluster.api.patch(job, lambda j: setattr(j.spec, "replicas", 8))
    engine.run(until=engine.now + 60.0)
    show_pods(cluster, "after expand")
    print(f"  application now on {runner.rts.num_pes} PEs")

    print("\n== letting the job run to completion ==")
    engine.run(until=engine.now + 100_000.0)
    print(f"  phase={job.status.phase.value}, "
          f"completed {runner.app.completed_steps} steps, "
          f"makespan {job.status.completion_time - job.status.submit_time:.0f}s")
    show_pods(cluster, "after completion (operator cleaned up)")


if __name__ == "__main__":
    main()
