#!/usr/bin/env python
"""Compare the four scheduling policies with the paper's simulator (§4.3.1).

Runs the 16-random-job workload under elastic / moldable / rigid-min /
rigid-max across several submission rates and prints the Table-1-style
comparison plus one Figure-7 panel as an ASCII chart.

Run:  python examples/scheduler_comparison.py [trials]
"""

import sys

from repro.experiments import render_chart
from repro.schedsim import (
    compare_policies,
    format_policy_table,
    format_sweep,
    sweep_submission_gap,
)


def main(trials: int = 25) -> None:
    print(f"averaging {trials} random 16-job workloads per configuration\n")

    stats = compare_policies(submission_gap=90.0, rescale_gap=180.0, trials=trials)
    print(format_policy_table(
        stats, title="Policy comparison @ submission gap 90 s, T_rescale_gap 180 s"
    ))

    print("\nsweeping the submission gap (Figure 7a) ...\n")
    sweep = sweep_submission_gap(gaps=(0.0, 75.0, 150.0, 225.0, 300.0),
                                 trials=max(5, trials // 3))
    series = {p: sweep.series(p, "utilization") for p in sweep.policies()}
    print(render_chart(series, title="Cluster utilization vs submission gap",
                       y_label="util"))
    print()
    print(format_sweep(sweep, "utilization"))
    print(
        "\nTakeaways (matching the paper): the elastic scheduler sustains the "
        "highest utilization at every traffic level; min_replicas starts jobs "
        "fastest but finishes them slowest; the baselines converge once jobs "
        "stop overlapping."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 25)
