#!/usr/bin/env python
"""LeanMD with migration-driven load imbalance and a rescale (§4.1).

Runs the cell-based Lennard-Jones mini-MD on the chare runtime: atoms
drift between cells (changing per-chare load), the runtime's GreedyLB
rebalances, and a mid-run shrink exercises checkpoint/restore with the
particle state.  Prints energy history and the final load distribution.

Run:  python examples/leanmd_loadbalance.py
"""

from repro.apps.leanmd import LeanMD, LeanMDConfig
from repro.charm import CcsClient, CcsServer, CharmRuntime
from repro.sim import Engine


def main() -> None:
    config = LeanMDConfig(
        cells=(3, 3, 3),
        atoms_per_cell=10,
        steps=60,
        migrate_every=5,
        dt=1.5e-3,
        compute_per_pair=5e-7,
    )
    engine = Engine()
    rts = CharmRuntime(engine, num_pes=6)
    app = LeanMD(config)
    server = CcsServer(engine)
    app.attach_ccs(server)
    client = CcsClient(engine, server)
    engine.process(app.main(rts), name="leanmd")

    def controller():
        while app.completed_steps < 30:
            yield 0.02
        print(f"[{engine.now:7.3f}s] shrinking 6 -> 3 PEs at step "
              f"{app.completed_steps}")
        yield client.request("rescale", {"target": 3})

    engine.process(controller(), name="controller")
    engine.run()

    print(f"\nsimulated {app.completed_steps} MD steps "
          f"({config.num_cells} cells, {app.total_atoms(rts)} atoms)")
    print(f"finished on {rts.num_pes} PEs after "
          f"{[r.kind for r in app.rescale_reports]} rescale(s)")

    print("\nkinetic energy every 10 steps (system heats up as LJ forces act):")
    for i, energy in enumerate(app.energy_history):
        if i % 10 == 0:
            print(f"  step {i:3d}: {energy:10.3e}")

    print("\ncell population after migration (atoms wander between cells):")
    population = {}
    for cell in rts.elements(app.proxy.array_id):
        population[cell.index] = cell.atom_count
    counts = sorted(population.values())
    print(f"  min={counts[0]} median={counts[len(counts) // 2]} max={counts[-1]}")

    print("\nchares per PE (GreedyLB keeps the distribution even):")
    for pe_id, n in sorted(rts.stats()["population"].items()):
        print(f"  PE {pe_id}: {'#' * n} ({n})")


if __name__ == "__main__":
    main()
