#!/usr/bin/env python
"""Quickstart: an elastic HPC job scheduler on a simulated EKS cluster.

Builds the paper's 4-node (64 vCPU) Kubernetes topology, starts the
Charm++ MPI operator and the priority-based elastic scheduler, submits
three jobs of different priorities, and prints what happened — including
the on-the-fly shrink of a low-priority job when a high-priority one
arrives.

Run:  python examples/quickstart.py
"""

from repro.apps import make_app_factory
from repro.k8s import make_eks_cluster
from repro.mpioperator import AppSpec, CharmJob, CharmJobController, CharmJobSpec, WorkerSpec
from repro.scheduling import PolicyConfig
from repro.scheduling.controller import ElasticSchedulerController
from repro.sim import Engine


def make_job(name: str, size_class: str, min_replicas: int, max_replicas: int,
             priority: int) -> CharmJob:
    """A CharmJob running the modeled Jacobi workload of one size class."""
    return CharmJob(
        name,
        CharmJobSpec(
            min_replicas=min_replicas,
            max_replicas=max_replicas,
            priority=priority,
            worker=WorkerSpec.parse(cpu="1", memory="1Gi", shm="2Gi"),
            app=AppSpec(name="modeled", params={"size_class": size_class}),
            launcher_cpu=0.0,  # BestEffort launcher, as on the paper's cluster
        ),
    )


def main() -> None:
    engine = Engine()
    cluster = make_eks_cluster(engine)  # 4 x c6g.4xlarge = 64 vCPUs
    operator = CharmJobController(engine, cluster, app_factory=make_app_factory())
    scheduler = ElasticSchedulerController(
        engine, cluster, operator,
        config=PolicyConfig(name="elastic", rescale_gap=60.0),
    )

    # A low-priority job that would happily take the whole cluster...
    low = make_job("background-sweep", "large", min_replicas=8, max_replicas=32,
                   priority=1)
    # ...a second one filling the rest...
    low2 = make_job("param-study", "medium", min_replicas=4, max_replicas=16,
                    priority=1)
    # ...and, 90 s later, an urgent job that needs room *now*.
    urgent = make_job("deadline-run", "large", min_replicas=24, max_replicas=32,
                      priority=5)

    engine.schedule_at(0.0, scheduler.submit, low)
    engine.schedule_at(5.0, scheduler.submit, low2)
    engine.schedule_at(90.0, scheduler.submit, urgent)

    engine.run(until=30_000.0)

    print("=== job outcomes ===")
    for outcome in sorted(scheduler.outcomes, key=lambda o: o.submit_time):
        print(
            f"  {outcome.name:>16}: priority={outcome.priority} "
            f"response={outcome.response_time:7.1f}s "
            f"turnaround={outcome.turnaround_time:8.1f}s "
            f"rescales={outcome.rescale_count}"
        )
    print("\n=== cluster metrics (paper §4.3 definitions) ===")
    print("  " + scheduler.metrics("elastic").describe())
    print(
        "\nThe low-priority jobs started at their maximum sizes, were shrunk "
        "when 'deadline-run' arrived, and were expanded again as capacity "
        "freed up — no checkpoint-to-disk, no restart-from-scratch."
    )


if __name__ == "__main__":
    main()
