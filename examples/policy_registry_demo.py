#!/usr/bin/env python
"""The pluggable scheduler registry: list, extend, and run policies.

Three things in one demo:

1. list what's registered (the paper's four, the literature policies,
   the power-capped scenario) and resolve one by name;
2. register a *custom* policy — shortest-job-first via the
   ``priority_rule`` hook — exactly the way a third-party package would;
3. run EASY backfilling and the power-capped scenario on the same
   workload and compare the §4.3 metrics side by side.

Run:  python examples/policy_registry_demo.py
"""

from repro.scheduling import PolicyConfig
from repro.scheduling.literature import estimate_runtime
from repro.scheduling.registry import REGISTRY
from repro.schedsim import ScheduleSimulator, WorkloadSpec, generate_workload


def register_sjf() -> None:
    """A custom policy: shortest estimated job first, elastic otherwise."""

    @REGISTRY.register("sjf", description="shortest (estimated) job first",
                       tags=("demo",))
    def _sjf(rescale_gap: float = 180.0, **overrides) -> PolicyConfig:
        return PolicyConfig(
            name="sjf",
            rescale_gap=rescale_gap,
            priority_rule=lambda req: -estimate_runtime(req, req.min_replicas),
            **overrides,
        )


def main() -> None:
    print("# registered policies")
    for name in REGISTRY.list_policies():
        spec = REGISTRY.describe(name)
        marker = "*" if spec.paper else " "
        print(f"  {marker} {name:<14} {spec.description}")
    print("  (* = the paper's evaluation set)\n")

    register_sjf()
    assert "sjf" in REGISTRY
    print("registered custom policy 'sjf' via the decorator form\n")

    submissions = generate_workload(WorkloadSpec(num_jobs=16, seed=7))
    print("# 16-job workload, 64 slots, one draw per policy")
    for name in ("elastic", "easy-backfill", "power-capped", "sjf"):
        config = REGISTRY.resolve(name)
        result = ScheduleSimulator(config).run(submissions)
        print(f"  {name:<14} {result.metrics.describe()}")

    print(
        "\nEASY backfills around the reserved queue head; the power-capped "
        "scenario trades completion time for a hard watt ceiling; sjf "
        "reorders the queue through the priority_rule hook alone."
    )


if __name__ == "__main__":
    main()
